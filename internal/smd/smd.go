// Package smd implements the Soft Memory Daemon (§3.3, §4): the
// machine-wide arbiter of soft memory budgets.
//
// The daemon tracks each process's soft budget and self-reported usage.
// It approves budget requests from free machine memory when it can; under
// pressure it first harvests *slack* (budget processes hold but do not
// use — "excess soft memory budget in any process" costs nothing to take),
// then demands reclamation from a capped number of processes in descending
// reclamation weight, over-demanding by a fixed factor to amortize
// reclamation costs. If the quota cannot be met within the target cap, the
// triggering request is denied — already-reclaimed pages stay reclaimed
// and simply enlarge free memory, exactly as in the paper.
//
// Reclamation weights are pluggable (§7 asks what policy is fair); the
// default ProportionalWeight implements the paper's two criteria: weight
// grows with total footprint, and soft usage raises weight only in
// proportion to traditional usage, so processes that put most of their
// data in soft memory are not punished for it (§3.3's A/B example).
package smd

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"softmem/internal/core"
	"softmem/internal/faultinject"
	"softmem/internal/pages"
)

// ErrUnregistered reports an operation on a process the daemon no longer
// tracks.
var ErrUnregistered = errors.New("smd: process not registered")

// ProcID identifies a registered process for the daemon's lifetime.
type ProcID int

// Target is the daemon's handle for demanding reclamation from a process.
// *core.SMA satisfies it directly; the socket server wraps a connection.
type Target interface {
	// HandleDemand asks the process to release up to pages pages of soft
	// memory back to the machine; it returns the number released.
	HandleDemand(pages int) int
}

// BudgetShrinker is the optional extension of Target for processes that
// cache their granted budget locally (*core.SMA keeps it in an atomic
// ledger; the socket server forwards over the wire). The daemon calls it
// when it harvests slack from the process so the cached ledger shrinks
// in step — without the notification the victim would keep allocating
// against revoked budget, over-committing the machine by up to the
// harvested amount.
type BudgetShrinker interface {
	// ShrinkBudget revokes pages of previously granted budget.
	ShrinkBudget(pages int)
}

// WeightPolicy computes a process's reclamation weight from its
// traditional footprint and soft usage. Higher weight = reclaimed sooner.
type WeightPolicy interface {
	Weight(traditionalBytes int64, softPages int) float64
	Name() string
}

// ProportionalWeight is the default policy: w = T' + S·T'/(T'+S) with T'
// the traditional footprint in pages (floored at one page so a process is
// never invisible). It is strictly increasing in both T and S, and for
// equal soft usage a process with less traditional memory — i.e. a higher
// soft-to-traditional ratio — gets a lower weight, satisfying the paper's
// incentive criterion (§3.3).
type ProportionalWeight struct{}

// Weight implements WeightPolicy.
func (ProportionalWeight) Weight(traditionalBytes int64, softPages int) float64 {
	t := float64(traditionalBytes) / pages.Size
	if t < 1 {
		t = 1
	}
	s := float64(softPages)
	if t+s == 0 {
		return 0
	}
	return t + s*t/(t+s)
}

// Name implements WeightPolicy.
func (ProportionalWeight) Name() string { return "proportional" }

// FootprintWeight weighs processes by total footprint T+S, the "larger
// users give up more" policy §7 debates.
type FootprintWeight struct{}

// Weight implements WeightPolicy.
func (FootprintWeight) Weight(traditionalBytes int64, softPages int) float64 {
	return float64(traditionalBytes)/pages.Size + float64(softPages)
}

// Name implements WeightPolicy.
func (FootprintWeight) Name() string { return "footprint" }

// SoftShareWeight weighs processes purely by soft usage: intuitively fair
// (heavy soft users benefit most) but a disincentive to adopt soft memory,
// which is why the paper rejects it. Kept for the policy ablation (E8).
type SoftShareWeight struct{}

// Weight implements WeightPolicy.
func (SoftShareWeight) Weight(_ int64, softPages int) float64 { return float64(softPages) }

// Name implements WeightPolicy.
func (SoftShareWeight) Name() string { return "softshare" }

// Config parameterizes a Daemon.
type Config struct {
	// TotalPages is the machine's soft memory partition (required > 0).
	TotalPages int
	// TargetCap bounds how many processes one request may disturb
	// ("selects a capped number of processes", §3.3). Default 3.
	TargetCap int
	// ReclaimFactor over-demands by this factor to amortize reclamation
	// ("demands a fixed memory percentage upon reclamation, which may
	// exceed the immediate soft memory request", §4). Default 1.25.
	ReclaimFactor float64
	// Policy is the reclamation-weight policy. Default ProportionalWeight.
	Policy WeightPolicy
	// AllowSelfReclaim lets a requester be chosen as its own reclamation
	// target (§7 open question). Default false.
	AllowSelfReclaim bool
	// OnEvent, if set, receives an audit record for every grant, denial,
	// slack harvest, and demand — the trail an operator needs to answer
	// "who took my memory and why". Called with the daemon lock held;
	// must not call back into the daemon and must be fast.
	OnEvent func(Event)
	// EventLog is the capacity of the daemon's in-memory audit ring,
	// served by Events() (and `smdctl events`). Oldest entries are
	// overwritten once full. Default 256; negative disables the ring
	// (OnEvent still fires).
	EventLog int
	// TraceLog is the capacity of the reclaim-cycle trace ring, served
	// by Traces() (and `smdctl trace`). Default 64; negative disables
	// tracing (reclaim IDs are still minted and stamped on events).
	TraceLog int
	// Clock overrides the daemon's wall clock (nil = time.Now). The
	// stall-rate EWMA behind QoS victim selection differentiates
	// cumulative stall reports over inter-report wall time; tests inject
	// a fake clock here to drive it deterministically.
	Clock func() time.Time
}

// EventKind classifies audit events.
type EventKind int

// Audit event kinds.
const (
	// EventGrant: a budget request was approved.
	EventGrant EventKind = iota
	// EventDeny: a budget request was denied under unrelievable pressure.
	EventDeny
	// EventSlack: unused budget was harvested from a process.
	EventSlack
	// EventDemand: a reclamation demand was issued to a process.
	EventDemand
	// EventCede: soft budget was ceded to a federated peer machine.
	EventCede
	// EventReceive: soft budget was received from a federated peer.
	EventReceive
)

// String returns the kind's name.
func (k EventKind) String() string {
	switch k {
	case EventGrant:
		return "grant"
	case EventDeny:
		return "deny"
	case EventSlack:
		return "slack"
	case EventDemand:
		return "demand"
	case EventCede:
		return "cede"
	case EventReceive:
		return "receive"
	default:
		return "unknown"
	}
}

// Event is one audit record.
type Event struct {
	// Seq numbers events monotonically from 1 (assigned when the event
	// is recorded; 0 in events delivered before ring setup).
	Seq  uint64 `json:",omitempty"`
	Kind EventKind
	// KindName is Kind.String(), populated in ring snapshots so JSON
	// dumps (smdctl events) read without a decoder table.
	KindName string `json:",omitempty"`
	// Proc is the acting process: the requester for grants/denials, the
	// source for slack harvests and demands.
	Proc ProcID
	Name string
	// Pages is the request size for grants/denials, the harvested amount
	// for slack, the demanded amount for demands.
	Pages int
	// Released is the pages actually released (demands only).
	Released int
	// Trigger is the requesting process whose need caused a slack
	// harvest or demand (zero otherwise).
	Trigger ProcID
	// SpilledBytes is the acting process's spill-tier footprint at the
	// time of the event (from its latest Usage self-report), so the
	// audit trail shows demotion pressure alongside reclamation.
	SpilledBytes int64 `json:",omitempty"`
	// ReclaimID links the event to its reclaim cycle (`smdctl trace`);
	// 0 for grants served from free memory, which have no cycle.
	ReclaimID uint64 `json:",omitempty"`
}

func (c *Config) setDefaults() {
	if c.TargetCap <= 0 {
		c.TargetCap = 3
	}
	if c.EventLog == 0 {
		c.EventLog = 256
	}
	if c.TraceLog == 0 {
		c.TraceLog = 64
	}
	if c.ReclaimFactor < 1 {
		c.ReclaimFactor = 1.25
	}
	if c.Policy == nil {
		c.Policy = ProportionalWeight{}
	}
}

// Stats is a snapshot of the daemon's counters.
type Stats struct {
	Requests       int64 // budget requests received
	Granted        int64 // requests approved
	Denied         int64 // requests denied under unrelievable pressure
	ReclaimEvents  int64 // requests that required any reclamation
	SlackPages     int64 // budget slack harvested without disturbance
	DemandedPages  int64 // pages demanded from processes
	PagesReclaimed int64 // pages actually released by processes
	BudgetPages    int   // Σ budgets currently granted
	FreePages      int   // TotalPages − Σ budgets
	Procs          int
	// SpilledBytes is Σ self-reported spill-tier footprints: reclaimed
	// soft data the machine's processes are holding on local disk.
	SpilledBytes int64
	// CededPages / ReceivedPages count soft budget migrated to and from
	// federated peer machines (see Cede / Receive).
	CededPages    int64
	ReceivedPages int64
	// TotalPages is the current partition size (cfg.TotalPages adjusted
	// by federation).
	TotalPages int
}

// ProcInfo describes one registered process, for observability.
type ProcInfo struct {
	ID          ProcID
	Name        string
	BudgetPages int
	Usage       core.Usage
	Weight      float64
}

type procState struct {
	id     ProcID
	name   string
	target Target
	budget int
	usage  core.Usage
	gone   bool

	// QoS state (qos.go). tenant is the zero value until SetTenant;
	// stallEWMA/stallAt track the smoothed stall rate differentiated
	// from Usage.StallNs self-reports; the page counters accumulate this
	// process's lifetime as a reclamation source, the evidence trail for
	// "where did reclamation pressure land".
	tenant        TenantSpec
	stallEWMA     float64
	stallAt       time.Time
	demandedPages int64
	releasedPages int64
	slackPages    int64
}

// Daemon is the machine-wide soft memory manager.
type Daemon struct {
	mu     sync.Mutex
	cfg    Config
	procs  map[ProcID]*procState
	nextID ProcID
	stats  Stats
	// totalPages is the partition size the daemon arbitrates. It starts
	// at cfg.TotalPages and moves when federated peers cede or receive
	// budget across machines (Cede / Receive).
	totalPages int

	// events is the audit ring (capacity cfg.EventLog, nil when
	// disabled); eventSeq numbers every recorded event, so Events()
	// readers can detect gaps when the ring wraps.
	events   []Event
	eventPos int
	eventLen int
	eventSeq uint64

	// traces is the reclaim-cycle ring (capacity cfg.TraceLog, nil when
	// disabled); reclaimSeq mints the cycle IDs stamped on events and
	// propagated to processes over IPC.
	traces     []Trace
	tracePos   int
	traceLen   int
	reclaimSeq uint64

	// eventsDropped / tracesDropped count ring overwrites: entries an
	// operator can no longer inspect because the ring wrapped before
	// they were read. Atomics so CounterFunc readers skip d.mu.
	eventsDropped atomic.Int64
	tracesDropped atomic.Int64

	// met holds the arbitration latency histograms once RegisterMetrics
	// has run; nil keeps the arbitration path free of timing calls.
	met atomic.Pointer[smdMetrics]
}

// NewDaemon returns a daemon arbitrating cfg.TotalPages of soft memory.
func NewDaemon(cfg Config) *Daemon {
	if cfg.TotalPages <= 0 {
		panic("smd: Config.TotalPages must be positive")
	}
	cfg.setDefaults()
	d := &Daemon{cfg: cfg, procs: make(map[ProcID]*procState), totalPages: cfg.TotalPages}
	if cfg.EventLog > 0 {
		d.events = make([]Event, cfg.EventLog)
	}
	if cfg.TraceLog > 0 {
		d.traces = make([]Trace, cfg.TraceLog)
	}
	return d
}

// TotalPages returns the soft memory partition size. The value is
// cfg.TotalPages plus any net budget received from (or minus any ceded
// to) federated peers.
func (d *Daemon) TotalPages() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.totalPages
}

// Register adds a process. The returned Proc is the process's
// core.DaemonClient; target receives reclamation demands (it may be nil
// for processes that only ever release, e.g. pure observers, but such a
// process can never be a reclamation source).
func (d *Daemon) Register(name string, target Target) *Proc {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.nextID++
	ps := &procState{id: d.nextID, name: name, target: target}
	d.procs[ps.id] = ps
	return &Proc{d: d, id: ps.id}
}

// Unregister removes a process, returning its budget to the free pool.
// Typically called when a job exits; its soft pages are assumed returned
// to the machine by process teardown.
func (d *Daemon) Unregister(p *Proc) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if ps, ok := d.procs[p.id]; ok {
		ps.gone = true
		delete(d.procs, p.id)
	}
}

// grantedLocked returns Σ budgets.
func (d *Daemon) grantedLocked() int {
	sum := 0
	for _, ps := range d.procs {
		sum += ps.budget
	}
	return sum
}

// weightLocked computes a process's current reclamation weight.
func (d *Daemon) weightLocked(ps *procState) float64 {
	return d.cfg.Policy.Weight(ps.usage.TraditionalBytes, ps.usage.UsedPages)
}

// candidatesLocked returns processes other than requester (unless self-
// reclaim is allowed) in victim order. Legacy order is descending
// reclamation weight (biggest first). Once any process has registered a
// tenant spec, QoS order takes over: ascending stall pressure, so the
// cycle reclaims from whoever is hurting least relative to its SLO and
// disturbs stalling latency-critical tenants last. Weight breaks
// pressure ties (bigger first — among equally unpressured processes the
// legacy bias still applies), then ID for determinism.
func (d *Daemon) candidatesLocked(requester ProcID) []*procState {
	out := make([]*procState, 0, len(d.procs))
	for _, ps := range d.procs {
		if ps.id == requester && !d.cfg.AllowSelfReclaim {
			continue
		}
		out = append(out, ps)
	}
	qos := d.qosActiveLocked()
	sort.Slice(out, func(i, j int) bool {
		if qos {
			pi, pj := d.pressureLocked(out[i]), d.pressureLocked(out[j])
			if pi != pj {
				return pi < pj
			}
			ri, rj := d.qosRankLocked(out[i]), d.qosRankLocked(out[j])
			if ri != rj {
				return ri < rj
			}
		}
		wi, wj := d.weightLocked(out[i]), d.weightLocked(out[j])
		if wi != wj {
			return wi > wj
		}
		return out[i].id < out[j].id // deterministic tie-break
	})
	return out
}

// requestBudget is the core arbitration path, timed into the request
// histogram when instrumented.
func (d *Daemon) requestBudget(id ProcID, n int, u core.Usage) (int, error) {
	m := d.met.Load()
	if m == nil {
		return d.arbitrate(id, n, u, nil)
	}
	t0 := time.Now()
	granted, err := d.arbitrate(id, n, u, m)
	m.request.ObserveDuration(time.Since(t0))
	return granted, err
}

// arbitrate approves a budget request from free memory when it can;
// otherwise it runs a reclaim cycle: mint a reclaim ID, harvest slack,
// demand reclamation, and grant or deny. The cycle is recorded in the
// trace ring and its ID stamped on every event and demand it issues.
func (d *Daemon) arbitrate(id ProcID, n int, u core.Usage, m *smdMetrics) (int, error) {
	if n <= 0 {
		return 0, fmt.Errorf("smd: non-positive budget request %d", n)
	}
	d.mu.Lock()
	ps, ok := d.procs[id]
	if !ok {
		d.mu.Unlock()
		return 0, ErrUnregistered
	}
	d.adoptUsageLocked(ps, u)
	d.stats.Requests++

	free := d.totalPages - d.grantedLocked()
	if free >= n {
		ps.budget += n
		d.stats.Granted++
		d.emitLocked(Event{Kind: EventGrant, Proc: id, Name: ps.name, Pages: n})
		d.mu.Unlock()
		return n, nil
	}
	need := n - free
	d.stats.ReclaimEvents++
	d.reclaimSeq++
	rid := d.reclaimSeq
	// A reclaim cycle has begun: targets are about to be selected. A
	// crash armed here dies with the cycle ID minted but no demand issued.
	faultinject.Fire("smd.cycle")
	cycleStart := time.Now()
	tr := Trace{ID: rid, Requester: id, ReqName: ps.name, Pages: n, Need: need, Start: cycleStart}

	// finish seals the cycle: stamps duration and outcome, records the
	// trace, and observes the cycle histogram. Caller still holds d.mu.
	finish := func(outcome string) {
		dur := time.Since(cycleStart)
		tr.DurNs = dur.Nanoseconds()
		tr.Outcome = outcome
		d.recordTraceLocked(tr)
		if m != nil {
			m.cycle.ObserveDuration(dur)
		}
	}

	// Phase 1 — harvest slack: unused budget in other processes costs
	// nothing to take ("minimal disturbance", §3.3; the prototype's bias
	// toward "targets that will experience little or no disturbance", §4).
	cands := d.candidatesLocked(id)
	for _, c := range cands {
		if need <= 0 {
			break
		}
		slack := c.budget - c.usage.UsedPages
		if slack <= 0 {
			continue
		}
		take := slack
		if take > need {
			take = need
		}
		c.budget -= take
		need -= take
		c.slackPages += int64(take)
		d.stats.SlackPages += int64(take)
		// Tell the victim its cached budget shrank, or it will keep
		// allocating against the harvested pages. Lock ordering matches
		// the phase-2 demands below: one-way daemon → process.
		if bs, ok := c.target.(BudgetShrinker); ok {
			bs.ShrinkBudget(take)
		}
		tr.Hops = append(tr.Hops, TraceHop{Kind: "slack", Proc: c.id, Name: c.name, Released: take})
		d.emitLocked(Event{Kind: EventSlack, Proc: c.id, Name: c.name, Pages: take, Trigger: id, ReclaimID: rid})
	}
	if need <= 0 {
		ps.budget += n
		d.stats.Granted++
		finish("granted")
		d.emitLocked(Event{Kind: EventGrant, Proc: id, Name: ps.name, Pages: n, ReclaimID: rid})
		d.mu.Unlock()
		return n, nil
	}

	// Phase 2 — demand reclamation from up to TargetCap processes in
	// victim order (legacy: descending weight; QoS: ascending pressure),
	// over-demanding by ReclaimFactor to amortize.
	qosOrder := d.qosActiveLocked()
	quota := int(math.Ceil(float64(need) * d.cfg.ReclaimFactor))
	targets := 0
	for _, c := range cands {
		if quota <= 0 || targets >= d.cfg.TargetCap {
			break
		}
		if c.target == nil || c.usage.UsedPages <= 0 {
			continue
		}
		want := quota
		if want > c.usage.UsedPages {
			want = c.usage.UsedPages
		}
		if qosOrder {
			// Starvation floor: QoS ordering concentrates demands on the
			// least-pressured tenant, so cap each demand to leave the
			// victim 1/qosFloorDiv of its footprint — no class is ever
			// drained to zero, however unpressured it looks.
			if floor := c.usage.UsedPages / qosFloorDiv; want > c.usage.UsedPages-floor {
				want = c.usage.UsedPages - floor
			}
			if want <= 0 {
				continue
			}
		}
		targets++
		c.demandedPages += int64(want)
		d.stats.DemandedPages += int64(want)
		// The daemon lock is held across the demand. Lock ordering is
		// one-way (daemon → process): processes never call the daemon
		// while holding per-Context heap locks, so this cannot deadlock.
		demandStart := time.Now()
		var released int
		var spans []core.DemandSpan
		var fresh *core.Usage
		if tt, ok := c.target.(TracedTarget); ok {
			released, spans, fresh = tt.HandleDemandTraced(want, rid)
		} else {
			released = c.target.HandleDemand(want)
		}
		demandDur := time.Since(demandStart)
		if m != nil {
			m.demandRTT.ObserveDuration(demandDur)
		}
		if released < 0 {
			released = 0
		}
		if released > c.budget {
			released = c.budget
		}
		c.budget -= released
		c.releasedPages += int64(released)
		if fresh != nil {
			// The demand response carried a post-reclaim self-report:
			// adopt it (spill footprint included) instead of estimating.
			d.adoptUsageLocked(c, *fresh)
		} else {
			c.usage.UsedPages -= released
			if c.usage.UsedPages < 0 {
				c.usage.UsedPages = 0
			}
		}
		quota -= released
		need -= released
		d.stats.PagesReclaimed += int64(released)
		tr.Hops = append(tr.Hops, TraceHop{
			Kind: "demand", Proc: c.id, Name: c.name, Asked: want,
			Released: released, DurNs: demandDur.Nanoseconds(), Spans: spans,
		})
		d.emitLocked(Event{Kind: EventDemand, Proc: c.id, Name: c.name, Pages: want, Released: released, Trigger: id, ReclaimID: rid})
		// The chaos suite's kill point: the process has surrendered pages
		// but the requester's grant has not happened — a crash here leaves
		// the machine's ledger mid-cycle, and recovery must come entirely
		// from process-side resync.
		faultinject.Fire("smd.demand.post")
	}

	if need > 0 {
		// Quota unmet within the target cap: deny the triggering request.
		// Pages already reclaimed stay free (§3.3).
		d.stats.Denied++
		finish("denied")
		d.emitLocked(Event{Kind: EventDeny, Proc: id, Name: ps.name, Pages: n, ReclaimID: rid})
		d.mu.Unlock()
		return 0, nil
	}
	ps.budget += n
	d.stats.Granted++
	finish("granted")
	d.emitLocked(Event{Kind: EventGrant, Proc: id, Name: ps.name, Pages: n, ReclaimID: rid})
	d.mu.Unlock()
	return n, nil
}

// emitLocked records an audit event in the ring and delivers it to the
// OnEvent sink if one is configured. The acting process's latest
// spill-tier self-report is stamped onto the event here so both
// consumers see it.
func (d *Daemon) emitLocked(ev Event) {
	if ps, ok := d.procs[ev.Proc]; ok {
		ev.SpilledBytes = ps.usage.SpilledBytes
	}
	if d.events != nil {
		d.eventSeq++
		ev.Seq = d.eventSeq
		ev.KindName = ev.Kind.String()
		if d.eventLen == len(d.events) {
			d.eventsDropped.Add(1)
		}
		d.events[d.eventPos] = ev
		d.eventPos = (d.eventPos + 1) % len(d.events)
		if d.eventLen < len(d.events) {
			d.eventLen++
		}
	}
	if d.cfg.OnEvent != nil {
		d.cfg.OnEvent(ev)
	}
}

// Events returns the audit ring's contents, oldest first. The ring
// holds the last Config.EventLog events; consecutive Seq values mean no
// events were lost between snapshots. Nil when the ring is disabled.
func (d *Daemon) Events() []Event {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.events == nil || d.eventLen == 0 {
		return nil
	}
	out := make([]Event, 0, d.eventLen)
	start := d.eventPos - d.eventLen
	if start < 0 {
		start += len(d.events)
	}
	for i := 0; i < d.eventLen; i++ {
		out = append(out, d.events[(start+i)%len(d.events)])
	}
	return out
}

// releaseBudget returns budget from a process.
func (d *Daemon) releaseBudget(id ProcID, n int, u core.Usage) error {
	if n < 0 {
		return fmt.Errorf("smd: negative budget release %d", n)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	ps, ok := d.procs[id]
	if !ok {
		return ErrUnregistered
	}
	d.adoptUsageLocked(ps, u)
	ps.budget -= n
	if ps.budget < 0 {
		ps.budget = 0
	}
	return nil
}

// reportUsage refreshes a process's self-report outside budget traffic.
func (d *Daemon) reportUsage(id ProcID, u core.Usage) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	ps, ok := d.procs[id]
	if !ok {
		return ErrUnregistered
	}
	d.adoptUsageLocked(ps, u)
	return nil
}

// Stats returns a snapshot of the daemon's counters.
func (d *Daemon) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := d.stats
	st.BudgetPages = d.grantedLocked()
	st.FreePages = d.totalPages - st.BudgetPages
	st.TotalPages = d.totalPages
	st.Procs = len(d.procs)
	for _, ps := range d.procs {
		st.SpilledBytes += ps.usage.SpilledBytes
	}
	return st
}

// Snapshot lists registered processes with their budgets, usage, and
// current weights, sorted by descending weight.
func (d *Daemon) Snapshot() []ProcInfo {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]ProcInfo, 0, len(d.procs))
	for _, ps := range d.procs {
		out = append(out, ProcInfo{
			ID:          ps.id,
			Name:        ps.name,
			BudgetPages: ps.budget,
			Usage:       ps.usage,
			Weight:      d.weightLocked(ps),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Proc is a process's handle on the daemon; it implements
// core.DaemonClient.
type Proc struct {
	d  *Daemon
	id ProcID
}

// ID returns the process's daemon-assigned identifier.
func (p *Proc) ID() ProcID { return p.id }

// RequestBudget implements core.DaemonClient.
func (p *Proc) RequestBudget(n int, u core.Usage) (int, error) {
	return p.d.requestBudget(p.id, n, u)
}

// ReleaseBudget implements core.DaemonClient.
func (p *Proc) ReleaseBudget(n int, u core.Usage) error {
	return p.d.releaseBudget(p.id, n, u)
}

// ReportUsage refreshes the daemon's view of this process outside budget
// traffic (e.g. when traditional memory changes).
func (p *Proc) ReportUsage(u core.Usage) error {
	return p.d.reportUsage(p.id, u)
}

var _ core.DaemonClient = (*Proc)(nil)
