package smd

import (
	"strconv"
	"time"

	"softmem/internal/core"
	"softmem/internal/metrics"
)

// TracedTarget is the optional extension of Target that carries the
// daemon's reclaim-cycle ID with each demand and returns the process's
// per-hop spans plus a fresh usage self-report (nil = unknown). *core.SMA
// and the socket server's connection wrapper both implement it; the
// daemon falls back to plain HandleDemand for targets that do not.
type TracedTarget interface {
	HandleDemandTraced(pages int, reclaimID uint64) (released int, spans []core.DemandSpan, usage *core.Usage)
}

// TraceHop is one step of a reclaim cycle as the daemon saw it: a slack
// harvest (budget taken without disturbing the process) or a reclamation
// demand with the process-side spans that came back over IPC.
type TraceHop struct {
	// Kind is "slack" or "demand".
	Kind string `json:"kind"`
	// Proc and Name identify the process the pages came from.
	Proc ProcID `json:"proc"`
	Name string `json:"name"`
	// Asked is the pages demanded ("demand" hops only).
	Asked int `json:"asked,omitempty"`
	// Released is the pages actually obtained from the process.
	Released int `json:"released"`
	// DurNs is the demand round-trip duration ("demand" hops only).
	DurNs int64 `json:"dur_ns,omitempty"`
	// Spans are the process-side steps of the demand: free-pool draw,
	// per-SDS reclaims, spill demotions.
	Spans []core.DemandSpan `json:"spans,omitempty"`
}

// Trace is one complete reclaim cycle: a budget request that could not be
// satisfied from free memory, the slack harvests and demands issued to
// relieve it, and the outcome. Served by the daemon's /traces endpoint
// and rendered by `smdctl trace`.
type Trace struct {
	// ID is the reclaim-cycle identifier stamped on every event, demand,
	// and process-side span of the cycle.
	ID uint64 `json:"id"`
	// Requester is the process whose budget request triggered the cycle.
	Requester ProcID `json:"requester"`
	ReqName   string `json:"req_name"`
	// Pages is the requested budget; Need is the shortfall after free
	// memory (the part the cycle had to find).
	Pages int `json:"pages"`
	Need  int `json:"need"`
	// Start is when the cycle began; DurNs its total duration.
	Start time.Time `json:"start"`
	DurNs int64     `json:"dur_ns"`
	// Outcome is "granted" or "denied".
	Outcome string `json:"outcome"`
	// Hops are the cycle's steps in issue order.
	Hops []TraceHop `json:"hops,omitempty"`
}

// recordTraceLocked appends a completed cycle to the trace ring. Caller
// holds d.mu.
func (d *Daemon) recordTraceLocked(tr Trace) {
	if d.traces == nil {
		return
	}
	if d.traceLen == len(d.traces) {
		d.tracesDropped.Add(1)
	}
	d.traces[d.tracePos] = tr
	d.tracePos = (d.tracePos + 1) % len(d.traces)
	if d.traceLen < len(d.traces) {
		d.traceLen++
	}
}

// Traces returns the reclaim-cycle ring's contents, oldest first. The
// ring holds the last Config.TraceLog cycles; nil when disabled.
func (d *Daemon) Traces() []Trace {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.traces == nil || d.traceLen == 0 {
		return nil
	}
	out := make([]Trace, 0, d.traceLen)
	start := d.tracePos - d.traceLen
	if start < 0 {
		start += len(d.traces)
	}
	for i := 0; i < d.traceLen; i++ {
		out = append(out, d.traces[(start+i)%len(d.traces)])
	}
	return out
}

// TraceByID returns the reclaim cycle with the given ID, if it is still
// in the ring.
func (d *Daemon) TraceByID(id uint64) (Trace, bool) {
	for _, tr := range d.Traces() {
		if tr.ID == id {
			return tr, true
		}
	}
	return Trace{}, false
}

// smdMetrics holds the daemon's latency histograms; nil (no
// RegisterMetrics call) keeps arbitration free of timing calls.
type smdMetrics struct {
	request   *metrics.Histogram
	demandRTT *metrics.Histogram
	cycle     *metrics.Histogram
}

// RegisterMetrics registers the daemon's instruments into r and switches
// on arbitration latency observation. Call once, before serving.
func (d *Daemon) RegisterMetrics(r *metrics.Registry) {
	m := &smdMetrics{
		request:   r.Histogram("softmem_smd_request_ns", "budget request arbitration latency in ns"),
		demandRTT: r.Histogram("softmem_smd_demand_rtt_ns", "reclamation demand round-trip latency in ns"),
		cycle:     r.Histogram("softmem_smd_reclaim_cycle_ns", "full reclaim cycle latency in ns, slack harvest through grant or deny"),
	}
	stat := func(f func(Stats) int64) func() int64 {
		return func() int64 { return f(d.Stats()) }
	}
	r.CounterFunc("softmem_smd_requests_total", "budget requests received", stat(func(s Stats) int64 { return s.Requests }))
	r.CounterFunc("softmem_smd_granted_total", "budget requests approved", stat(func(s Stats) int64 { return s.Granted }))
	r.CounterFunc("softmem_smd_denied_total", "budget requests denied", stat(func(s Stats) int64 { return s.Denied }))
	r.CounterFunc("softmem_smd_reclaim_cycles_total", "requests that required reclamation", stat(func(s Stats) int64 { return s.ReclaimEvents }))
	r.CounterFunc("softmem_smd_slack_pages_total", "budget slack harvested without disturbance", stat(func(s Stats) int64 { return s.SlackPages }))
	r.CounterFunc("softmem_smd_demanded_pages_total", "pages demanded from processes", stat(func(s Stats) int64 { return s.DemandedPages }))
	r.CounterFunc("softmem_smd_reclaimed_pages_total", "pages actually released by processes", stat(func(s Stats) int64 { return s.PagesReclaimed }))
	r.GaugeFunc("softmem_smd_budget_pages", "sum of budgets currently granted", func() float64 { return float64(d.Stats().BudgetPages) })
	r.GaugeFunc("softmem_smd_free_pages", "unallocated soft pages", func() float64 { return float64(d.Stats().FreePages) })
	r.GaugeFunc("softmem_smd_procs", "registered processes", func() float64 { return float64(d.Stats().Procs) })
	r.GaugeFunc("softmem_smd_spilled_bytes", "sum of self-reported spill-tier footprints", func() float64 { return float64(d.Stats().SpilledBytes) })
	r.GaugeFunc("softmem_smd_total_pages", "current partition size, federation-adjusted", func() float64 { return float64(d.Stats().TotalPages) })
	r.CounterFunc("softmem_smd_ceded_pages_total", "soft budget ceded to federated peers", stat(func(s Stats) int64 { return s.CededPages }))
	r.CounterFunc("softmem_smd_received_pages_total", "soft budget received from federated peers", stat(func(s Stats) int64 { return s.ReceivedPages }))
	r.CounterFunc("softmem_smd_events_dropped_total", "audit events overwritten before being read because the event ring wrapped", d.eventsDropped.Load)
	r.CounterFunc("softmem_trace_dropped_total", "reclaim-cycle traces overwritten before being read because the trace ring wrapped", d.tracesDropped.Load)

	perProc := func(name, help string, value func(ProcInfo) float64) {
		r.CollectFunc(name, help, metrics.KindGauge, func() []metrics.Sample {
			procs := d.Snapshot()
			out := make([]metrics.Sample, 0, len(procs))
			for _, p := range procs {
				out = append(out, metrics.Sample{
					Labels: []metrics.Label{
						{Name: "proc", Value: procIDLabel(p.ID)},
						{Name: "name", Value: p.Name},
					},
					Value: value(p),
				})
			}
			return out
		})
	}
	perProc("softmem_smd_proc_budget_pages", "per-process granted budget", func(p ProcInfo) float64 { return float64(p.BudgetPages) })
	perProc("softmem_smd_proc_used_pages", "per-process self-reported soft usage", func(p ProcInfo) float64 { return float64(p.Usage.UsedPages) })
	perProc("softmem_smd_proc_weight", "per-process reclamation weight", func(p ProcInfo) float64 { return p.Weight })
	perProc("softmem_smd_proc_spilled_bytes", "per-process spill-tier footprint", func(p ProcInfo) float64 { return float64(p.Usage.SpilledBytes) })

	d.registerQoSMetrics(r)

	d.met.Store(m)
}

func procIDLabel(id ProcID) string {
	return strconv.Itoa(int(id))
}
