package smd

import (
	"testing"

	"softmem/internal/core"
	"softmem/internal/metrics"
	"softmem/internal/pages"
)

// tracedFake is a fakeTarget that implements TracedTarget, recording the
// reclaim ID it was handed and returning canned spans.
type tracedFake struct {
	fakeTarget
	reclaimIDs []uint64
	spans      []core.DemandSpan
	usage      *core.Usage
}

func (f *tracedFake) HandleDemandTraced(pages int, reclaimID uint64) (int, []core.DemandSpan, *core.Usage) {
	f.reclaimIDs = append(f.reclaimIDs, reclaimID)
	return f.fakeTarget.HandleDemand(pages), f.spans, f.usage
}

func TestTraceRecordsReclaimCycle(t *testing.T) {
	var events []Event
	d := NewDaemon(Config{
		TotalPages:    100,
		ReclaimFactor: 1.0,
		OnEvent:       func(ev Event) { events = append(events, ev) },
	})
	victim := &tracedFake{
		fakeTarget: fakeTarget{avail: 80},
		spans: []core.DemandSpan{
			{Kind: "sds", Name: "store", Pages: 30, Allocs: 42},
			{Kind: "spill_demote", Count: 42, Bytes: 1 << 16},
		},
		usage: &core.Usage{UsedPages: 50, SpilledBytes: 1 << 16},
	}
	pv := d.Register("victim", victim)
	if g, _ := pv.RequestBudget(80, usage(80, 0)); g != 80 {
		t.Fatal("setup failed")
	}
	needy := d.Register("needy", nil)
	if g, err := needy.RequestBudget(50, usage(0, 0)); err != nil || g != 50 {
		t.Fatalf("granted = %d, err %v", g, err)
	}

	traces := d.Traces()
	if len(traces) != 1 {
		t.Fatalf("traces = %d, want 1", len(traces))
	}
	tr := traces[0]
	if tr.ID == 0 {
		t.Fatal("trace has no reclaim ID")
	}
	if tr.Requester != needy.ID() || tr.ReqName != "needy" {
		t.Fatalf("requester = %d(%s)", tr.Requester, tr.ReqName)
	}
	if tr.Pages != 50 || tr.Need != 30 {
		t.Fatalf("pages/need = %d/%d, want 50/30", tr.Pages, tr.Need)
	}
	if tr.Outcome != "granted" {
		t.Fatalf("outcome = %q", tr.Outcome)
	}
	if tr.DurNs < 0 {
		t.Fatalf("DurNs = %d", tr.DurNs)
	}
	if len(tr.Hops) != 1 {
		t.Fatalf("hops = %+v, want one demand hop", tr.Hops)
	}
	hop := tr.Hops[0]
	if hop.Kind != "demand" || hop.Proc != pv.ID() || hop.Asked != 30 || hop.Released != 30 {
		t.Fatalf("hop = %+v", hop)
	}
	if len(hop.Spans) != 2 || hop.Spans[0].Kind != "sds" || hop.Spans[1].Kind != "spill_demote" {
		t.Fatalf("spans did not ride back: %+v", hop.Spans)
	}

	// The victim saw the same cycle ID the trace carries.
	if len(victim.reclaimIDs) != 1 || victim.reclaimIDs[0] != tr.ID {
		t.Fatalf("victim saw reclaim IDs %v, trace ID %d", victim.reclaimIDs, tr.ID)
	}
	// The demand response's usage self-report replaced the daemon's
	// decrement estimate, spill footprint included.
	for _, p := range d.Snapshot() {
		if p.ID == pv.ID() {
			if p.Usage.UsedPages != 50 || p.Usage.SpilledBytes != 1<<16 {
				t.Fatalf("ledger did not adopt demand usage: %+v", p.Usage)
			}
		}
	}
	// The cycle's audit events are stamped with it too.
	stamped := 0
	for _, ev := range events {
		if ev.ReclaimID == tr.ID {
			stamped++
		}
	}
	if stamped < 2 { // at least the demand and the grant
		t.Fatalf("only %d events carry reclaim ID %d: %+v", stamped, tr.ID, events)
	}

	// TraceByID round-trips; unknown IDs miss.
	if got, ok := d.TraceByID(tr.ID); !ok || got.ID != tr.ID {
		t.Fatalf("TraceByID(%d) = %+v, %v", tr.ID, got, ok)
	}
	if _, ok := d.TraceByID(tr.ID + 999); ok {
		t.Fatal("TraceByID found a trace that never ran")
	}
}

func TestTraceFastPathRecordsNothing(t *testing.T) {
	d := NewDaemon(Config{TotalPages: 100})
	p := d.Register("a", nil)
	if g, _ := p.RequestBudget(40, usage(0, 0)); g != 40 {
		t.Fatal("grant failed")
	}
	if traces := d.Traces(); len(traces) != 0 {
		t.Fatalf("free-memory grant produced traces: %+v", traces)
	}
}

func TestTraceUntracedTargetFallsBack(t *testing.T) {
	d := NewDaemon(Config{TotalPages: 100, ReclaimFactor: 1.0})
	victim := &fakeTarget{avail: 80} // plain Target, no TracedTarget
	pv := d.Register("victim", victim)
	pv.RequestBudget(80, usage(80, 0))
	needy := d.Register("needy", nil)
	if g, err := needy.RequestBudget(50, usage(0, 0)); err != nil || g != 50 {
		t.Fatalf("granted = %d, err %v", g, err)
	}
	traces := d.Traces()
	if len(traces) != 1 || len(traces[0].Hops) != 1 {
		t.Fatalf("traces = %+v", traces)
	}
	if hop := traces[0].Hops[0]; hop.Released != 30 || len(hop.Spans) != 0 {
		t.Fatalf("fallback hop = %+v", hop)
	}
}

func TestTraceRingWrapsKeepingNewest(t *testing.T) {
	d := NewDaemon(Config{TotalPages: 10, ReclaimFactor: 1.0, TraceLog: 2})
	victim := &tracedFake{fakeTarget: fakeTarget{avail: 1000}}
	pv := d.Register("victim", victim)
	needy := d.Register("needy", nil)
	for i := 0; i < 3; i++ {
		victim.avail = 1000
		if g, _ := pv.RequestBudget(10, usage(10, 0)); g == 0 {
			t.Fatal("victim refill failed")
		}
		if g, err := needy.RequestBudget(5, usage(0, 0)); err != nil || g != 5 {
			t.Fatalf("cycle %d: granted = %d, err %v", i, g, err)
		}
		if err := needy.ReleaseBudget(5, usage(0, 0)); err != nil {
			t.Fatal(err)
		}
		for _, pi := range d.Snapshot() {
			if pi.Name == "victim" && pi.BudgetPages > 0 {
				if err := pv.ReleaseBudget(pi.BudgetPages, usage(0, 0)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	traces := d.Traces()
	if len(traces) != 2 {
		t.Fatalf("ring holds %d traces, want 2", len(traces))
	}
	if traces[0].ID >= traces[1].ID {
		t.Fatalf("traces out of order: %d, %d", traces[0].ID, traces[1].ID)
	}
}

// TestTraceEndToEndWithSMA drives a real reclamation through core.SMA and
// asserts the daemon's trace carries the process-side spans: the full
// SMD -> SMA -> SDS cycle of the acceptance criteria.
func TestTraceEndToEndWithSMA(t *testing.T) {
	const totalPages = 256
	machine := pages.NewPool(totalPages)
	d := NewDaemon(Config{TotalPages: totalPages, ReclaimFactor: 1.0})
	reg := metrics.NewRegistry()
	d.RegisterMetrics(reg)

	smaA := core.New(core.Config{Machine: machine})
	sdsA := &e2eSDS{}
	sdsA.ctx = smaA.Register("store", 0, sdsA)
	smaA.AttachDaemon(d.Register("A", smaA))
	for i := 0; i < totalPages; i++ {
		if err := sdsA.push(4096); err != nil {
			t.Fatalf("A fill: %v", err)
		}
	}

	smaB := core.New(core.Config{Machine: machine})
	sdsB := &e2eSDS{}
	sdsB.ctx = smaB.Register("batch", 0, sdsB)
	smaB.AttachDaemon(d.Register("B", smaB))
	for i := 0; i < totalPages/2; i++ {
		if err := sdsB.push(4096); err != nil {
			t.Fatalf("B alloc %d: %v", i, err)
		}
	}

	traces := d.Traces()
	if len(traces) == 0 {
		t.Fatal("no reclaim cycles traced")
	}
	sawSpan := false
	for _, tr := range traces {
		if tr.Outcome != "granted" {
			continue
		}
		for _, hop := range tr.Hops {
			if hop.Kind != "demand" {
				continue
			}
			for _, sp := range hop.Spans {
				if (sp.Kind == "sds" || sp.Kind == "freepool") && sp.Pages > 0 {
					sawSpan = true
				}
			}
		}
	}
	if !sawSpan {
		t.Fatalf("no demand hop carried a page-releasing span: %+v", traces)
	}

	// The registered reclaim-cycle histogram observed the cycles.
	hist := reg.Histogram("softmem_smd_reclaim_cycle_ns", "")
	if hist.Count() == 0 {
		t.Fatal("reclaim cycle histogram empty after traced cycles")
	}
}
