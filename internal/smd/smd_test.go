package smd

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"

	"softmem/internal/alloc"
	"softmem/internal/core"
	"softmem/internal/pages"
)

// fakeTarget releases up to avail pages on demand and records demands.
type fakeTarget struct {
	avail    int
	demands  []int
	released int
}

func (f *fakeTarget) HandleDemand(n int) int {
	f.demands = append(f.demands, n)
	take := n
	if take > f.avail {
		take = f.avail
	}
	f.avail -= take
	f.released += take
	return take
}

func usage(usedPages int, tradBytes int64) core.Usage {
	return core.Usage{UsedPages: usedPages, TraditionalBytes: tradBytes}
}

func TestGrantFromFreeMemory(t *testing.T) {
	d := NewDaemon(Config{TotalPages: 100})
	p := d.Register("a", nil)
	granted, err := p.RequestBudget(40, usage(0, 0))
	if err != nil || granted != 40 {
		t.Fatalf("granted = %d, err %v", granted, err)
	}
	st := d.Stats()
	if st.BudgetPages != 40 || st.FreePages != 60 {
		t.Fatalf("stats = %+v", st)
	}
	if st.ReclaimEvents != 0 {
		t.Fatal("grant from free memory counted as reclaim event")
	}
}

func TestSlackHarvestAvoidsDemands(t *testing.T) {
	d := NewDaemon(Config{TotalPages: 100})
	idle := &fakeTarget{avail: 100}
	pIdle := d.Register("idle", idle)
	// idle holds 80 budget but uses only 20 -> 60 slack.
	if g, _ := pIdle.RequestBudget(80, usage(20, 0)); g != 80 {
		t.Fatal("setup grant failed")
	}
	p := d.Register("needy", nil)
	// free = 20; request 50 -> need 30 from slack.
	granted, err := p.RequestBudget(50, usage(0, 0))
	if err != nil || granted != 50 {
		t.Fatalf("granted = %d, err %v", granted, err)
	}
	if len(idle.demands) != 0 {
		t.Fatalf("slack harvest issued demands: %v", idle.demands)
	}
	st := d.Stats()
	if st.SlackPages != 30 {
		t.Fatalf("SlackPages = %d, want 30", st.SlackPages)
	}
	// Idle's budget must have shrunk to 50 (80 - 30).
	for _, pi := range d.Snapshot() {
		if pi.Name == "idle" && pi.BudgetPages != 50 {
			t.Fatalf("idle budget = %d, want 50", pi.BudgetPages)
		}
	}
}

func TestDemandPathReclaims(t *testing.T) {
	d := NewDaemon(Config{TotalPages: 100, ReclaimFactor: 1.0})
	victim := &fakeTarget{avail: 80}
	pv := d.Register("victim", victim)
	if g, _ := pv.RequestBudget(80, usage(80, 0)); g != 80 {
		t.Fatal("setup failed")
	}
	p := d.Register("needy", nil)
	// free = 20, no slack; need 30 more -> demand from victim.
	granted, err := p.RequestBudget(50, usage(0, 0))
	if err != nil || granted != 50 {
		t.Fatalf("granted = %d, err %v", granted, err)
	}
	if victim.released != 30 {
		t.Fatalf("victim released %d, want 30", victim.released)
	}
	st := d.Stats()
	if st.PagesReclaimed != 30 || st.ReclaimEvents != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestOverReclamationFactor(t *testing.T) {
	d := NewDaemon(Config{TotalPages: 100, ReclaimFactor: 1.5})
	victim := &fakeTarget{avail: 100}
	pv := d.Register("victim", victim)
	pv.RequestBudget(100, usage(100, 0))
	p := d.Register("needy", nil)
	granted, _ := p.RequestBudget(20, usage(0, 0)) // need 20, quota 30
	if granted != 20 {
		t.Fatalf("granted = %d", granted)
	}
	if victim.released != 30 {
		t.Fatalf("victim released %d, want 30 (1.5x over-reclamation)", victim.released)
	}
	// The extra 10 pages enlarge free memory for the next request.
	if st := d.Stats(); st.FreePages != 10 {
		t.Fatalf("FreePages = %d, want 10", st.FreePages)
	}
}

func TestWeightOrderSelectsHeaviestFirst(t *testing.T) {
	d := NewDaemon(Config{TotalPages: 100, ReclaimFactor: 1.0, TargetCap: 1})
	light := &fakeTarget{avail: 50}
	heavy := &fakeTarget{avail: 50}
	pl := d.Register("light", light)
	ph := d.Register("heavy", heavy)
	// Same soft usage, heavy has more traditional memory -> higher weight
	// (the paper's A/B example: T_A < T_B means A is disturbed less).
	pl.RequestBudget(50, usage(50, 10*pages.Size))
	ph.RequestBudget(50, usage(50, 1000*pages.Size))
	p := d.Register("needy", nil)
	granted, _ := p.RequestBudget(10, usage(0, 0))
	if granted != 10 {
		t.Fatalf("granted = %d", granted)
	}
	if heavy.released != 10 || light.released != 0 {
		t.Fatalf("released heavy=%d light=%d; want heavy only", heavy.released, light.released)
	}
}

func TestTargetCapDeniesWhenInsufficient(t *testing.T) {
	d := NewDaemon(Config{TotalPages: 90, ReclaimFactor: 1.0, TargetCap: 2})
	var procs []*Proc
	var targets []*fakeTarget
	for i := 0; i < 3; i++ {
		ft := &fakeTarget{avail: 30}
		targets = append(targets, ft)
		pp := d.Register("p", ft)
		pp.RequestBudget(30, usage(30, int64(i)*pages.Size))
		procs = append(procs, pp)
	}
	needy := d.Register("needy", nil)
	// All 90 pages budgeted and in use; request 70 but only 2 targets
	// (60 pages) may be disturbed -> denial.
	granted, err := needy.RequestBudget(70, usage(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if granted != 0 {
		t.Fatalf("granted = %d, want 0 (denied)", granted)
	}
	disturbed := 0
	for _, ft := range targets {
		if ft.released > 0 {
			disturbed++
		}
	}
	if disturbed != 2 {
		t.Fatalf("%d processes disturbed, want exactly TargetCap=2", disturbed)
	}
	if st := d.Stats(); st.Denied != 1 {
		t.Fatalf("Denied = %d, want 1", st.Denied)
	}
	// Reclaimed pages stay free after the denial.
	if st := d.Stats(); st.FreePages != 60 {
		t.Fatalf("FreePages = %d, want 60 (reclaimed pages remain free)", st.FreePages)
	}
}

func TestSelfReclaimDisabledByDefault(t *testing.T) {
	d := NewDaemon(Config{TotalPages: 50, ReclaimFactor: 1.0})
	self := &fakeTarget{avail: 50}
	p := d.Register("self", self)
	p.RequestBudget(50, usage(50, 0))
	// Self requests more; the only possible target is itself -> denied.
	granted, _ := p.RequestBudget(10, usage(50, 0))
	if granted != 0 {
		t.Fatalf("granted = %d, want 0", granted)
	}
	if self.released != 0 {
		t.Fatal("self-reclaim happened with AllowSelfReclaim=false")
	}
}

func TestSelfReclaimEnabled(t *testing.T) {
	d := NewDaemon(Config{TotalPages: 50, ReclaimFactor: 1.0, AllowSelfReclaim: true})
	self := &fakeTarget{avail: 50}
	p := d.Register("self", self)
	p.RequestBudget(50, usage(50, 0))
	granted, _ := p.RequestBudget(10, usage(50, 0))
	if granted != 10 {
		t.Fatalf("granted = %d, want 10 via self-reclaim", granted)
	}
	if self.released != 10 {
		t.Fatalf("self released %d, want 10", self.released)
	}
}

func TestUnregisterReleasesBudget(t *testing.T) {
	d := NewDaemon(Config{TotalPages: 100})
	p := d.Register("a", nil)
	p.RequestBudget(60, usage(0, 0))
	d.Unregister(p)
	if st := d.Stats(); st.FreePages != 100 || st.Procs != 0 {
		t.Fatalf("stats after unregister = %+v", st)
	}
	if _, err := p.RequestBudget(1, usage(0, 0)); !errors.Is(err, ErrUnregistered) {
		t.Fatalf("err = %v, want ErrUnregistered", err)
	}
	if err := p.ReleaseBudget(1, usage(0, 0)); !errors.Is(err, ErrUnregistered) {
		t.Fatalf("release err = %v, want ErrUnregistered", err)
	}
}

func TestReleaseBudget(t *testing.T) {
	d := NewDaemon(Config{TotalPages: 100})
	p := d.Register("a", nil)
	p.RequestBudget(60, usage(0, 0))
	if err := p.ReleaseBudget(20, usage(40, 0)); err != nil {
		t.Fatal(err)
	}
	if st := d.Stats(); st.BudgetPages != 40 {
		t.Fatalf("BudgetPages = %d, want 40", st.BudgetPages)
	}
	// Over-release floors at zero rather than corrupting the ledger.
	if err := p.ReleaseBudget(1000, usage(0, 0)); err != nil {
		t.Fatal(err)
	}
	if st := d.Stats(); st.BudgetPages != 0 {
		t.Fatalf("BudgetPages = %d after over-release, want 0", st.BudgetPages)
	}
}

func TestInvalidRequests(t *testing.T) {
	d := NewDaemon(Config{TotalPages: 10})
	p := d.Register("a", nil)
	if _, err := p.RequestBudget(0, usage(0, 0)); err == nil {
		t.Fatal("RequestBudget(0) did not error")
	}
	if err := p.ReleaseBudget(-1, usage(0, 0)); err == nil {
		t.Fatal("ReleaseBudget(-1) did not error")
	}
}

func TestReportUsageFeedsWeights(t *testing.T) {
	d := NewDaemon(Config{TotalPages: 100})
	p := d.Register("a", nil)
	if err := p.ReportUsage(usage(5, 77)); err != nil {
		t.Fatal(err)
	}
	snap := d.Snapshot()
	if len(snap) != 1 || snap[0].Usage.TraditionalBytes != 77 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestProportionalWeightCriteria(t *testing.T) {
	w := ProportionalWeight{}
	// Criterion (paper §3.3): same soft usage, more traditional memory
	// means higher weight.
	const S = 100
	wA := w.Weight(10*pages.Size, S)
	wB := w.Weight(500*pages.Size, S)
	if !(wA < wB) {
		t.Fatalf("w(T=10)=%v !< w(T=500)=%v", wA, wB)
	}
	// Monotone in soft usage too (criterion i: larger footprint, higher
	// weight).
	if !(w.Weight(100*pages.Size, 50) < w.Weight(100*pages.Size, 200)) {
		t.Fatal("weight not increasing in soft usage")
	}
	// Zero-footprint process has minimal but defined weight.
	if w.Weight(0, 0) <= 0 {
		t.Fatal("zero-footprint weight not positive (floor)")
	}
}

func TestProportionalWeightMonotoneProperty(t *testing.T) {
	w := ProportionalWeight{}
	f := func(tPages uint16, s uint16, dt uint8, ds uint8) bool {
		tb := int64(tPages) * pages.Size
		base := w.Weight(tb, int(s))
		if w.Weight(tb+int64(dt)*pages.Size+pages.Size, int(s)) < base {
			return false // must not decrease in T
		}
		if w.Weight(tb, int(s)+int(ds)+1) < base {
			return false // must not decrease in S
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestAlternativeWeightPolicies(t *testing.T) {
	fp := FootprintWeight{}
	if fp.Weight(10*pages.Size, 5) != 15 {
		t.Fatalf("footprint weight = %v", fp.Weight(10*pages.Size, 5))
	}
	ss := SoftShareWeight{}
	if ss.Weight(1<<40, 7) != 7 {
		t.Fatalf("softshare weight = %v", ss.Weight(1<<40, 7))
	}
	for _, p := range []WeightPolicy{ProportionalWeight{}, fp, ss} {
		if p.Name() == "" {
			t.Fatal("policy missing name")
		}
	}
}

func TestZeroTotalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDaemon(0) did not panic")
		}
	}()
	NewDaemon(Config{})
}

// TestEndToEndTwoSMAs wires two real SMAs to one daemon and one machine
// pool: B's allocation forces reclamation from A, and machine accounting
// stays conserved. This is the in-process version of the paper's Figure 2
// scenario.
func TestEndToEndTwoSMAs(t *testing.T) {
	const totalPages = 5120 // 20 MiB, as in the paper
	machine := pages.NewPool(totalPages)
	d := NewDaemon(Config{TotalPages: totalPages, ReclaimFactor: 1.0})

	// Process A: fills 10 MiB of soft memory in a reclaimable stack SDS.
	smaA := core.New(core.Config{Machine: machine})
	sdsA := &e2eSDS{}
	sdsA.ctx = smaA.Register("store", 0, sdsA)
	smaA.AttachDaemon(d.Register("A", smaA))
	for i := 0; i < 2560; i++ { // 2560 × 4 KiB = 10 MiB
		if err := sdsA.push(4096); err != nil {
			t.Fatalf("A fill: %v", err)
		}
	}

	// Process B: allocates 12 MiB, exceeding the 10 MiB remaining.
	smaB := core.New(core.Config{Machine: machine})
	sdsB := &e2eSDS{}
	sdsB.ctx = smaB.Register("batch", 0, sdsB)
	smaB.AttachDaemon(d.Register("B", smaB))
	for i := 0; i < 3072; i++ { // 3072 × 4 KiB = 12 MiB
		if err := sdsB.push(4096); err != nil {
			t.Fatalf("B alloc %d: %v", i, err)
		}
	}

	if got := smaB.FootprintBytes(); got < 12<<20 {
		t.Fatalf("B footprint = %d, want >= 12 MiB", got)
	}
	if got := smaA.FootprintBytes(); got > 9<<20 {
		t.Fatalf("A footprint = %d after reclamation, want <= 9 MiB", got)
	}
	if smaA.Stats().DemandsServed == 0 {
		t.Fatal("A never served a demand")
	}
	// Machine conservation: pages in use equal A + B usage.
	wantInUse := smaA.Stats().UsedPages + smaB.Stats().UsedPages
	if machine.InUse() != wantInUse {
		t.Fatalf("machine InUse = %d, SMAs hold %d", machine.InUse(), wantInUse)
	}
	if machine.InUse() > totalPages {
		t.Fatal("machine over-committed")
	}
}

// e2eSDS is a stack SDS used by the end-to-end test: oldest-first
// reclamation, like the paper's soft linked list.
type e2eSDS struct {
	ctx  *core.Context
	refs []alloc.Ref
}

func (s *e2eSDS) push(size int) error {
	ref, err := s.ctx.Alloc(size)
	if err != nil {
		return err
	}
	return s.ctx.Do(func(tx *core.Tx) error {
		s.refs = append(s.refs, ref)
		return nil
	})
}

func (s *e2eSDS) Reclaim(tx *core.Tx, bytes int) int {
	freed := 0
	for len(s.refs) > 0 && freed < bytes {
		r := s.refs[0]
		s.refs = s.refs[1:]
		size, err := tx.Size(r)
		if err != nil {
			continue
		}
		if err := tx.Free(r); err == nil {
			freed += size
		}
	}
	return freed
}

func TestEventAuditTrail(t *testing.T) {
	var events []Event
	d := NewDaemon(Config{
		TotalPages:    100,
		ReclaimFactor: 1.0,
		OnEvent:       func(ev Event) { events = append(events, ev) },
	})
	victim := &fakeTarget{avail: 80}
	pv := d.Register("victim", victim)
	pv.RequestBudget(80, usage(60, 0)) // grant; 20 slack
	needy := d.Register("needy", nil)
	needy.RequestBudget(50, usage(0, 0)) // 20 free + 20 slack + 10 demand

	kinds := map[EventKind]int{}
	for _, ev := range events {
		kinds[ev.Kind]++
	}
	if kinds[EventGrant] != 2 {
		t.Fatalf("grants = %d, want 2 (events: %+v)", kinds[EventGrant], events)
	}
	if kinds[EventSlack] != 1 {
		t.Fatalf("slack events = %d, want 1", kinds[EventSlack])
	}
	if kinds[EventDemand] != 1 {
		t.Fatalf("demand events = %d, want 1", kinds[EventDemand])
	}
	// The demand names the victim and the trigger.
	for _, ev := range events {
		if ev.Kind == EventDemand {
			if ev.Name != "victim" || ev.Released != 10 {
				t.Fatalf("demand event = %+v", ev)
			}
			if ev.Trigger == 0 {
				t.Fatal("demand event missing trigger")
			}
		}
	}
	// Denial is audited too.
	events = nil
	needy.RequestBudget(1000, usage(0, 0))
	found := false
	for _, ev := range events {
		if ev.Kind == EventDeny && ev.Pages == 1000 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no deny event: %+v", events)
	}
}

func TestEventKindString(t *testing.T) {
	for k, want := range map[EventKind]string{
		EventGrant: "grant", EventDeny: "deny", EventSlack: "slack",
		EventDemand: "demand", EventKind(9): "unknown",
	} {
		if k.String() != want {
			t.Fatalf("%d.String() = %q", k, k.String())
		}
	}
}

func TestConcurrentRequestsRace(t *testing.T) {
	d := NewDaemon(Config{TotalPages: 10000, ReclaimFactor: 1.0})
	var victims []*Proc
	for i := 0; i < 4; i++ {
		ft := &fakeTarget{avail: 2000}
		p := d.Register("victim", ft)
		p.RequestBudget(2000, usage(2000, int64(i)*pages.Size))
		victims = append(victims, p)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := d.Register("needy", nil)
			for i := 0; i < 50; i++ {
				if granted, err := p.RequestBudget(4, usage(0, 0)); err == nil && granted > 0 {
					p.ReleaseBudget(granted, usage(0, 0))
				}
			}
			d.Unregister(p)
		}(g)
	}
	wg.Wait()
	st := d.Stats()
	if st.BudgetPages > d.TotalPages() {
		t.Fatalf("over-committed after concurrent churn: %+v", st)
	}
	_ = victims
}

// Property: for any sequence of grants, releases, and reclaim-backed
// requests, the daemon never over-commits its partition.
func TestLedgerNeverOverCommitsProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		const total = 256
		d := NewDaemon(Config{TotalPages: total, ReclaimFactor: 1.0})
		type pp struct {
			p  *Proc
			ft *fakeTarget
		}
		var procs []pp
		for i := 0; i < 4; i++ {
			ft := &fakeTarget{avail: 1 << 20}
			procs = append(procs, pp{d.Register("p", ft), ft})
		}
		for _, op := range ops {
			pr := procs[int(op)%len(procs)]
			n := int(op%32) + 1
			switch (op >> 8) % 3 {
			case 0, 1:
				granted, err := pr.p.RequestBudget(n, usage(n, int64(op)))
				if err != nil {
					return false
				}
				if granted != 0 && granted != n {
					return false // all-or-nothing grants
				}
			case 2:
				if err := pr.p.ReleaseBudget(n, usage(0, 0)); err != nil {
					return false
				}
			}
			if st := d.Stats(); st.BudgetPages > total || st.BudgetPages < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
