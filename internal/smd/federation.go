package smd

import "sort"

// Federation hooks: a clustered deployment runs one daemon per machine
// and lets pressured machines borrow soft budget from slack ones. The
// gossip layer (internal/clusterkv) exchanges PressureSummary snapshots
// and, when a transfer is agreed, calls Cede on the donor and Receive on
// the borrower — moving partition size, not data, across the wire. A
// cede uses the same slack-harvest coherence path as local arbitration
// (BudgetShrinker notifications), and never demands reclamation: budget
// migration must stay "minimal disturbance" or a cold node could stall
// its own tenants to help a hot one.

// PressureSummary is a machine's soft-memory pressure self-report,
// gossiped between federated daemons so peers can pick donors.
type PressureSummary struct {
	// TotalPages is the machine's current partition size (federation-
	// adjusted).
	TotalPages int
	// FreePages is TotalPages minus Σ granted budgets.
	FreePages int
	// SlackPages is Σ max(0, budget − used) across processes: budget
	// that could be harvested with zero disturbance.
	SlackPages int
	// Denied counts budget denials since startup — the clearest signal
	// the machine is under unrelievable pressure.
	Denied int64
	// ReclaimEvents counts requests that needed any reclamation.
	ReclaimEvents int64
}

// Pressure snapshots the daemon's current pressure for gossip.
func (d *Daemon) Pressure() PressureSummary {
	d.mu.Lock()
	defer d.mu.Unlock()
	granted := d.grantedLocked()
	slack := 0
	for _, ps := range d.procs {
		if s := ps.budget - ps.usage.UsedPages; s > 0 {
			slack += s
		}
	}
	return PressureSummary{
		TotalPages:    d.totalPages,
		FreePages:     d.totalPages - granted,
		SlackPages:    slack,
		Denied:        d.stats.Denied,
		ReclaimEvents: d.stats.ReclaimEvents,
	}
}

// Cede gives up to n pages of this machine's partition to peer,
// returning the pages actually ceded. Free pages go first; any
// remainder is harvested as slack from local processes in descending
// slack order, with BudgetShrinker notifications keeping victims'
// cached ledgers coherent (the PR 5 path). Cede never demands
// reclamation and never shrinks the partition below Σ granted budgets,
// so every local grant stays backed.
func (d *Daemon) Cede(n int, peer string) int {
	if n <= 0 {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	free := d.totalPages - d.grantedLocked()
	ceded := free
	if ceded > n {
		ceded = n
	}
	if ceded < 0 {
		ceded = 0
	}
	if need := n - ceded; need > 0 {
		// Harvest slack largest-first so the fewest processes are touched.
		cands := make([]*procState, 0, len(d.procs))
		for _, ps := range d.procs {
			if ps.budget-ps.usage.UsedPages > 0 {
				cands = append(cands, ps)
			}
		}
		sort.Slice(cands, func(i, j int) bool {
			si := cands[i].budget - cands[i].usage.UsedPages
			sj := cands[j].budget - cands[j].usage.UsedPages
			if si != sj {
				return si > sj
			}
			return cands[i].id < cands[j].id
		})
		for _, c := range cands {
			if need <= 0 {
				break
			}
			take := c.budget - c.usage.UsedPages
			if take > need {
				take = need
			}
			c.budget -= take
			need -= take
			ceded += take
			d.stats.SlackPages += int64(take)
			if bs, ok := c.target.(BudgetShrinker); ok {
				bs.ShrinkBudget(take)
			}
			d.emitLocked(Event{Kind: EventSlack, Proc: c.id, Name: c.name, Pages: take})
		}
	}
	if ceded <= 0 {
		return 0
	}
	d.totalPages -= ceded
	d.stats.CededPages += int64(ceded)
	d.emitLocked(Event{Kind: EventCede, Name: peer, Pages: ceded})
	return ceded
}

// Receive grows this machine's partition by n pages ceded by peer.
func (d *Daemon) Receive(n int, peer string) {
	if n <= 0 {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.totalPages += n
	d.stats.ReceivedPages += int64(n)
	d.emitLocked(Event{Kind: EventReceive, Name: peer, Pages: n})
}
