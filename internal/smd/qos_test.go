package smd

import (
	"testing"
	"time"

	"softmem/internal/core"
)

// fakeClock is a deterministic Config.Clock: each call returns the
// current time, and Advance moves it.
type fakeClock struct{ t time.Time }

func (f *fakeClock) Now() time.Time          { return f.t }
func (f *fakeClock) Advance(d time.Duration) { f.t = f.t.Add(d) }

func stallUsage(usedPages int, stallNs int64) core.Usage {
	return core.Usage{UsedPages: usedPages, StallNs: stallNs}
}

func TestStallEWMATracksReportsDeterministically(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	d := NewDaemon(Config{TotalPages: 1000, Clock: clk.Now})
	p := d.Register("kv", nil)
	d.SetTenant(p, TenantSpec{Tenant: "frontend", Class: 2, SLOMs: 10})

	// First report baselines; no EWMA movement.
	if err := p.ReportUsage(stallUsage(10, 0)); err != nil {
		t.Fatal(err)
	}
	// One second of wall time, 100ms of stall -> rate 0.1, EWMA 0.05.
	clk.Advance(time.Second)
	if err := p.ReportUsage(stallUsage(10, int64(100*time.Millisecond))); err != nil {
		t.Fatal(err)
	}
	qs := d.QoSSnapshot()
	if len(qs) != 1 {
		t.Fatalf("snapshot len = %d", len(qs))
	}
	if got, want := qs[0].StallRatio, 0.05; got != want {
		t.Fatalf("StallRatio = %v, want %v", got, want)
	}
	// pressure = (1+2) * 0.05 * (100/10) = 1.5
	if got, want := qs[0].Pressure, 1.5; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("Pressure = %v, want %v", got, want)
	}
	// Counter regression (process restart) rebaselines to zero instead
	// of producing a negative rate.
	clk.Advance(time.Second)
	if err := p.ReportUsage(stallUsage(10, 0)); err != nil {
		t.Fatal(err)
	}
	if got := d.QoSSnapshot()[0].StallRatio; got != 0 {
		t.Fatalf("StallRatio after counter regression = %v, want 0", got)
	}
}

// TestQoSVictimOrderPrefersLeastStalled is the tentpole's core behavior:
// with tenants registered, a reclaim cycle demands from the tenant
// stalling least relative to its SLO, not from whoever is biggest.
func TestQoSVictimOrderPrefersLeastStalled(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	d := NewDaemon(Config{TotalPages: 100, ReclaimFactor: 1.0, Clock: clk.Now})

	// The antagonist is SMALLER than the frontend: legacy weight order
	// would pick the frontend (more used pages) first. QoS must invert
	// that, because the frontend is stalling against a tight SLO while
	// the antagonist feels nothing.
	frontend := &fakeTarget{avail: 60}
	pf := d.Register("frontend", frontend)
	d.SetTenant(pf, TenantSpec{Tenant: "frontend", Class: 2, SLOMs: 10})
	if g, _ := pf.RequestBudget(60, stallUsage(60, 0)); g != 60 {
		t.Fatal("setup failed")
	}
	antagonist := &fakeTarget{avail: 30}
	pa := d.Register("antagonist", antagonist)
	d.SetTenant(pa, TenantSpec{Tenant: "batch", Class: 0, SLOMs: 1000})
	if g, _ := pa.RequestBudget(30, stallUsage(30, 0)); g != 30 {
		t.Fatal("setup failed")
	}

	// Frontend reports heavy stall over one second; antagonist none.
	clk.Advance(time.Second)
	if err := pf.ReportUsage(stallUsage(60, int64(500*time.Millisecond))); err != nil {
		t.Fatal(err)
	}
	if err := pa.ReportUsage(stallUsage(30, 0)); err != nil {
		t.Fatal(err)
	}

	// free = 10; needy asks 30 -> need 20 demanded in QoS order.
	needy := d.Register("needy", nil)
	granted, err := needy.RequestBudget(30, stallUsage(0, 0))
	if err != nil || granted != 30 {
		t.Fatalf("granted = %d, err %v", granted, err)
	}
	if len(antagonist.demands) == 0 {
		t.Fatal("antagonist (least pressured) got no demand")
	}
	if len(frontend.demands) != 0 {
		t.Fatalf("frontend (stalling, class 2, tight SLO) was demanded: %v", frontend.demands)
	}
	// The cumulative per-proc counters back the experiment evidence.
	for _, q := range d.QoSSnapshot() {
		switch q.Name {
		case "antagonist":
			if q.ReleasedPages != 20 {
				t.Fatalf("antagonist ReleasedPages = %d, want 20", q.ReleasedPages)
			}
		case "frontend":
			if q.ReleasedPages != 0 {
				t.Fatalf("frontend ReleasedPages = %d, want 0", q.ReleasedPages)
			}
		}
	}
}

// TestQoSColdStartOrdersByClassAndSLO: before any stall accumulates
// every pressure is 0, and ordering must fall back to the static
// (1+class) × (ref/slo) rank — the best-effort tenant is reclaimed
// first even though the frontend is bigger (legacy weight order would
// pick the frontend).
func TestQoSColdStartOrdersByClassAndSLO(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	d := NewDaemon(Config{TotalPages: 100, ReclaimFactor: 1.0, Clock: clk.Now})

	frontend := &fakeTarget{avail: 60}
	pf := d.Register("frontend", frontend)
	d.SetTenant(pf, TenantSpec{Tenant: "frontend", Class: 2, SLOMs: 10})
	if g, _ := pf.RequestBudget(60, stallUsage(60, 0)); g != 60 {
		t.Fatal("setup failed")
	}
	antagonist := &fakeTarget{avail: 30}
	pa := d.Register("antagonist", antagonist)
	d.SetTenant(pa, TenantSpec{Tenant: "batch", Class: 0, SLOMs: 1000})
	if g, _ := pa.RequestBudget(30, stallUsage(30, 0)); g != 30 {
		t.Fatal("setup failed")
	}

	// No stall reports at all: both pressures are exactly 0.
	needy := d.Register("needy", nil)
	if g, err := needy.RequestBudget(30, stallUsage(0, 0)); err != nil || g != 30 {
		t.Fatalf("granted = %d, err %v", g, err)
	}
	if len(antagonist.demands) == 0 {
		t.Fatal("cold start must demand from the loose-SLO class-0 tenant")
	}
	if len(frontend.demands) != 0 {
		t.Fatalf("cold start demanded from the class-2 tight-SLO tenant: %v", frontend.demands)
	}
	// The rendered victim order must match: the snapshot's first row is
	// the process a reclaim cycle would demand from first.
	qs := d.QoSSnapshot()
	if len(qs) < 2 || qs[0].Name != "antagonist" {
		t.Fatalf("QoSSnapshot order = %+v, want antagonist first", qs)
	}
}

// TestQoSStarvationFloor: QoS ordering concentrates demands on one
// victim, so each demand must leave it 1/8 of its footprint.
func TestQoSStarvationFloor(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	d := NewDaemon(Config{TotalPages: 100, ReclaimFactor: 1.0, TargetCap: 1, Clock: clk.Now})

	victim := &fakeTarget{avail: 80}
	pv := d.Register("victim", victim)
	d.SetTenant(pv, TenantSpec{Tenant: "batch", Class: 0})
	if g, _ := pv.RequestBudget(80, stallUsage(80, 0)); g != 80 {
		t.Fatal("setup failed")
	}

	// free = 20; needy asks 100 -> need 80 = victim's whole footprint.
	// The floor caps the demand at 80 - 80/8 = 70, so the request is
	// denied rather than the victim drained to zero.
	needy := d.Register("needy", nil)
	granted, err := needy.RequestBudget(100, stallUsage(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if granted != 0 {
		t.Fatalf("granted = %d, want 0 (starvation floor must deny)", granted)
	}
	if len(victim.demands) != 1 || victim.demands[0] != 70 {
		t.Fatalf("victim demands = %v, want [70]", victim.demands)
	}
	for _, q := range d.QoSSnapshot() {
		if q.Name == "victim" && q.UsedPages < 10 {
			t.Fatalf("victim left with %d pages, floor is 10", q.UsedPages)
		}
	}
}

// TestLegacyOrderWithoutTenants pins the compatibility contract: until
// SetTenant is called, victim selection is the legacy descending-weight
// order even when stall reports are flowing.
func TestLegacyOrderWithoutTenants(t *testing.T) {
	d := NewDaemon(Config{TotalPages: 100, ReclaimFactor: 1.0, TargetCap: 1})
	big := &fakeTarget{avail: 60}
	pb := d.Register("big", big)
	if g, _ := pb.RequestBudget(60, stallUsage(60, int64(time.Hour))); g != 60 {
		t.Fatal("setup failed")
	}
	small := &fakeTarget{avail: 30}
	ps := d.Register("small", small)
	if g, _ := ps.RequestBudget(30, stallUsage(30, 0)); g != 30 {
		t.Fatal("setup failed")
	}
	needy := d.Register("needy", nil)
	if g, _ := needy.RequestBudget(20, stallUsage(0, 0)); g != 20 {
		t.Fatal("grant failed")
	}
	if len(big.demands) == 0 {
		t.Fatal("legacy order must demand from the biggest process")
	}
	if len(small.demands) != 0 {
		t.Fatalf("legacy order demanded from the smaller process: %v", small.demands)
	}
	// No floor either: a full-footprint demand stays possible.
	needy2 := d.Register("needy2", nil)
	if g, _ := needy2.RequestBudget(70, stallUsage(0, 0)); g != 70 {
		t.Fatal("legacy full-footprint reclaim failed")
	}
}

// TestSetTenantClampsClass pins the class clamp.
func TestSetTenantClampsClass(t *testing.T) {
	d := NewDaemon(Config{TotalPages: 10})
	p := d.Register("a", nil)
	d.SetTenant(p, TenantSpec{Tenant: "t", Class: 9})
	if got := d.QoSSnapshot()[0].Class; got != 2 {
		t.Fatalf("Class = %d, want clamp to 2", got)
	}
	d.SetTenant(p, TenantSpec{Tenant: "t", Class: -3})
	if got := d.QoSSnapshot()[0].Class; got != 0 {
		t.Fatalf("Class = %d, want clamp to 0", got)
	}
}
