package smd

import (
	"testing"

	"softmem/internal/core"
	"softmem/internal/pages"
)

// TestSlackHarvestShrinksVictimBudget is the budget-coherence
// regression: when the daemon harvests slack from a victim, the
// victim's SMA must see its cached budget shrink, so its next
// allocation renegotiates with the daemon instead of succeeding
// locally against revoked budget. Before the BudgetShrinker
// notification existed, the victim kept its stale ledger and silently
// over-committed the machine by the harvested amount.
func TestSlackHarvestShrinksVictimBudget(t *testing.T) {
	const totalPages = 256
	machine := pages.NewPool(totalPages)
	d := NewDaemon(Config{TotalPages: totalPages, ReclaimFactor: 1.0})

	// Victim: allocates 10 pages; its SMA requests budget in chunks
	// (default 64), leaving 54 pages of slack.
	smaA := core.New(core.Config{Machine: machine})
	sdsA := &e2eSDS{}
	sdsA.ctx = smaA.Register("store", 0, sdsA)
	smaA.AttachDaemon(d.Register("A", smaA))
	for i := 0; i < 10; i++ {
		if err := sdsA.push(4096); err != nil {
			t.Fatalf("A fill: %v", err)
		}
	}
	budgetBefore := smaA.BudgetPages()
	if budgetBefore <= 10 {
		t.Fatalf("victim budget = %d, want a chunked grant with slack", budgetBefore)
	}

	// Requester: allocates enough that the daemon exhausts free pages
	// and must harvest the victim's slack.
	smaB := core.New(core.Config{Machine: machine})
	sdsB := &e2eSDS{}
	sdsB.ctx = smaB.Register("batch", 0, sdsB)
	smaB.AttachDaemon(d.Register("B", smaB))
	for i := 0; i < 200; i++ {
		if err := sdsB.push(4096); err != nil {
			t.Fatalf("B alloc %d: %v", i, err)
		}
	}
	if d.Stats().SlackPages == 0 {
		t.Fatal("scenario did not trigger a slack harvest")
	}

	// The victim's cached ledger must agree with the daemon's
	// post-harvest view.
	var daemonView, found = 0, false
	for _, pi := range d.Snapshot() {
		if pi.Name == "A" {
			daemonView, found = pi.BudgetPages, true
		}
	}
	if !found {
		t.Fatal("victim missing from daemon snapshot")
	}
	if got := smaA.BudgetPages(); got != daemonView {
		t.Fatalf("victim caches %d budget pages, daemon granted %d — stale ledger after harvest", got, daemonView)
	}
	if smaA.BudgetPages() >= budgetBefore {
		t.Fatalf("victim budget %d did not shrink from %d", smaA.BudgetPages(), budgetBefore)
	}

	// The victim's next allocation must renegotiate with the daemon (a
	// budget round-trip), not succeed locally against revoked budget.
	br0 := smaA.Stats().BudgetRequests
	if err := sdsA.push(4096); err != nil {
		t.Fatalf("A post-harvest alloc: %v", err)
	}
	if got := smaA.Stats().BudgetRequests; got == br0 {
		t.Fatalf("victim allocated locally against harvested budget (BudgetRequests stayed %d)", got)
	}

	// And the machine must never be over-committed by stale ledgers.
	if machine.InUse() > totalPages {
		t.Fatalf("machine over-committed: %d in use of %d", machine.InUse(), totalPages)
	}
}

// shrinkRecorder is a Target that also records BudgetShrinker calls.
type shrinkRecorder struct {
	demands []int
	shrinks []int
}

func (r *shrinkRecorder) HandleDemand(pages int) int {
	r.demands = append(r.demands, pages)
	return pages
}

func (r *shrinkRecorder) ShrinkBudget(pages int) {
	r.shrinks = append(r.shrinks, pages)
}

// TestSlackHarvestNotifiesBudgetShrinker pins the notification contract
// at the daemon layer: a harvest invokes ShrinkBudget with exactly the
// harvested amount and issues no reclamation demand when slack covers
// the need; plain Targets without the optional interface still work.
func TestSlackHarvestNotifiesBudgetShrinker(t *testing.T) {
	d := NewDaemon(Config{TotalPages: 100, ReclaimFactor: 1.0})
	victim := &shrinkRecorder{}
	pv := d.Register("victim", victim)
	if _, err := pv.RequestBudget(80, core.Usage{UsedPages: 30}); err != nil {
		t.Fatal(err)
	}
	plain := d.Register("plain", nil) // no target at all: must not panic
	if _, err := plain.RequestBudget(10, core.Usage{}); err != nil {
		t.Fatal(err)
	}

	needy := d.Register("needy", nil)
	// 10 pages free, so 30 of the victim's 50 slack pages are harvested.
	if g, err := needy.RequestBudget(40, core.Usage{}); err != nil || g != 40 {
		t.Fatalf("needy grant = %d, %v", g, err)
	}
	if len(victim.shrinks) != 1 || victim.shrinks[0] != 30 {
		t.Fatalf("victim shrink notifications = %v, want [30]", victim.shrinks)
	}
	if len(victim.demands) != 0 {
		t.Fatalf("slack-covered request still demanded reclamation: %v", victim.demands)
	}
}
