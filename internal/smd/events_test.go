package smd

import (
	"testing"

	"softmem/internal/core"
)

func TestEventRingRecordsDecisions(t *testing.T) {
	d := NewDaemon(Config{TotalPages: 100, ReclaimFactor: 1.0})
	victim := &fakeTarget{avail: 80}
	pv := d.Register("victim", victim)
	if g, _ := pv.RequestBudget(80, usage(80, 0)); g != 80 {
		t.Fatal("setup grant failed")
	}
	needy := d.Register("needy", nil)
	if g, _ := needy.RequestBudget(50, usage(0, 0)); g != 50 {
		t.Fatal("demand grant failed")
	}

	evs := d.Events()
	if len(evs) == 0 {
		t.Fatal("no events recorded")
	}
	kinds := map[EventKind]int{}
	for i, ev := range evs {
		kinds[ev.Kind]++
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has Seq %d, want consecutive from 1", i, ev.Seq)
		}
		if ev.KindName != ev.Kind.String() {
			t.Fatalf("KindName %q != Kind %v", ev.KindName, ev.Kind)
		}
	}
	if kinds[EventGrant] < 2 {
		t.Fatalf("want >= 2 grants, got %d (%v)", kinds[EventGrant], kinds)
	}
	if kinds[EventDemand] == 0 {
		t.Fatalf("demand path left no event: %v", kinds)
	}
}

func TestEventRingWrapsKeepingNewest(t *testing.T) {
	d := NewDaemon(Config{TotalPages: 1 << 20, EventLog: 4})
	p := d.Register("a", nil)
	for i := 0; i < 10; i++ {
		if g, _ := p.RequestBudget(1, usage(i, 0)); g != 1 {
			t.Fatalf("grant %d failed", i)
		}
	}
	evs := d.Events()
	if len(evs) != 4 {
		t.Fatalf("ring returned %d events, capacity 4", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(7 + i); ev.Seq != want {
			t.Fatalf("event %d has Seq %d, want %d (newest 4 of 10)", i, ev.Seq, want)
		}
	}
}

func TestEventRingDisabled(t *testing.T) {
	d := NewDaemon(Config{TotalPages: 100, EventLog: -1})
	p := d.Register("a", nil)
	p.RequestBudget(10, usage(0, 0))
	if evs := d.Events(); evs != nil {
		t.Fatalf("disabled ring returned %d events", len(evs))
	}
}

func TestEventsAndStatsCarrySpilledBytes(t *testing.T) {
	d := NewDaemon(Config{TotalPages: 100})
	a := d.Register("a", nil)
	b := d.Register("b", nil)
	a.RequestBudget(10, core.Usage{SpilledBytes: 1 << 20})
	b.RequestBudget(10, core.Usage{SpilledBytes: 1 << 10})

	if got := d.Stats().SpilledBytes; got != 1<<20+1<<10 {
		t.Fatalf("Stats.SpilledBytes = %d, want %d", got, 1<<20+1<<10)
	}
	evs := d.Events()
	last := evs[len(evs)-1]
	if last.Name != "b" || last.SpilledBytes != 1<<10 {
		t.Fatalf("last event = %+v, want b's grant stamped with 1024 spilled bytes", last)
	}
}
