package epoch

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestEnterExitBasics(t *testing.T) {
	d := NewDomain()
	if got := d.Current(); got != 1 {
		t.Fatalf("fresh domain epoch = %d, want 1", got)
	}
	if got := d.SafeBefore(); got != 2 {
		t.Fatalf("idle SafeBefore = %d, want global+1 = 2", got)
	}
	s, ok := d.Enter(42)
	if !ok {
		t.Fatal("Enter failed on an empty domain")
	}
	if got := d.SafeBefore(); got != 1 {
		t.Fatalf("SafeBefore with reader at epoch 1 = %d, want 1", got)
	}
	if got := d.ActiveReaders(); got != 1 {
		t.Fatalf("ActiveReaders = %d, want 1", got)
	}
	d.Advance()
	d.Advance()
	// The reader entered at epoch 1, so nothing stamped at or above 1
	// may drain while it is registered.
	if got := d.SafeBefore(); got != 1 {
		t.Fatalf("SafeBefore after advances with old reader = %d, want 1", got)
	}
	if got := d.Lag(); got != 2 {
		t.Fatalf("Lag = %d, want 2", got)
	}
	d.Exit(s)
	if got := d.SafeBefore(); got != 4 {
		t.Fatalf("SafeBefore after exit = %d, want global+1 = 4", got)
	}
	if got := d.Lag(); got != 0 {
		t.Fatalf("idle Lag = %d, want 0", got)
	}
}

func TestEnterExhaustionFallsBack(t *testing.T) {
	d := NewDomain()
	idxs := make([]int, 0, NumSlots)
	for i := 0; i < NumSlots; i++ {
		s, ok := d.Enter(uint64(i) * 7)
		if !ok {
			t.Fatalf("Enter %d failed with free slots remaining", i)
		}
		idxs = append(idxs, s)
	}
	if _, ok := d.Enter(3); ok {
		t.Fatal("Enter succeeded on a full domain")
	}
	d.Exit(idxs[NumSlots/2])
	if _, ok := d.Enter(3); !ok {
		t.Fatal("Enter failed after a slot freed")
	}
	seen := make(map[int]bool, len(idxs))
	for _, s := range idxs {
		if seen[s] {
			t.Fatalf("slot %d handed out twice", s)
		}
		seen[s] = true
	}
}

func TestDeferredCounter(t *testing.T) {
	d := NewDomain()
	d.NoteDeferred(3)
	d.NoteDeferred(0)
	d.NoteDeferred(-5) // ignored
	d.NoteDeferred(2)
	if got := d.DeferredPages(); got != 5 {
		t.Fatalf("DeferredPages = %d, want 5", got)
	}
}

// TestGracePeriodInvariant hammers Enter/Exit from reader goroutines
// while a writer advances the epoch and checks the core invariant:
// SafeBefore never exceeds the epoch of any reader registered at scan
// time, and a stamp taken after a reader registered is never covered
// while that reader is still in.
func TestGracePeriodInvariant(t *testing.T) {
	d := NewDomain()
	var stop atomic.Bool
	var wg sync.WaitGroup
	var violations atomic.Int64

	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			h := seed
			for !stop.Load() {
				s, ok := d.Enter(h)
				h = h*2862933555777941757 + 3037000493
				if !ok {
					continue
				}
				e := d.slots[s].epoch.Load()
				// While registered, the grace frontier may not pass us.
				if sb := d.SafeBefore(); sb > e {
					violations.Add(1)
				}
				d.Exit(s)
			}
		}(uint64(r) * 1000003)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5000; i++ {
			d.Advance()
			_ = d.SafeBefore()
			_ = d.Lag()
		}
		stop.Store(true)
	}()
	wg.Wait()
	if n := violations.Load(); n != 0 {
		t.Fatalf("grace frontier passed %d registered readers", n)
	}
	if got := d.ActiveReaders(); got != 0 {
		t.Fatalf("readers leaked: ActiveReaders = %d", got)
	}
}
