// Package epoch implements the grace-period machinery behind the
// lock-free SDS read paths: a global epoch counter plus a fixed array of
// reader slots. A reader claims a slot stamped with the current epoch
// before touching any soft-memory bytes and releases it when the copy is
// done; revocation stamps each retired allocation with the epoch at
// retire time and only recycles its pages once no registered reader
// could still observe them (the grace period covers the reclaim epoch).
//
// Safety argument (all atomics in Go are sequentially consistent, so a
// single total order over them exists):
//
//	reader: slot-CAS(0→e_r)  →  box-load (non-nil)  →  byte copy  →  slot-store(0)
//	writer: box-store(nil)   →  epoch-stamp read s  →  retire     →  later slot-scan
//
// If a reader loaded a non-nil box, its box-load precedes the writer's
// nil-store in the total order, hence its slot-CAS does too, and
// e_r ≤ s (the stamp is read from the global after the reader sampled
// it). Every scan after the retire therefore observes the slot active
// with epoch e_r ≤ s, so SafeBefore() ≤ e_r ≤ s and the strict
// `stamp < SafeBefore()` drain test keeps the pages in limbo. Readers
// need no validation loop: values are write-once (published via the box
// pointer, never rewritten in place), so a copy that started is never
// torn. When the reader instead observes a nil box the value was
// condemned; it exits its slot and retries on the owned path.
package epoch

import "sync/atomic"

// NumSlots is the size of the reader-slot array. Power of two so the
// hint-derived probe start is a mask, and large enough that a process
// with hundreds of concurrent readers rarely exhausts it (exhaustion is
// not an error — callers fall back to the locked read path).
const NumSlots = 128

// slot is one cache-line-padded reader registration cell. 0 means free;
// any other value is the epoch the occupying reader entered at.
type slot struct {
	epoch atomic.Uint64
	_     [56]byte // pad to a 64-byte cache line
}

// Domain is one process-wide epoch domain. The zero value is NOT ready;
// use NewDomain (the global epoch must start above zero so a live slot
// stamp is never confused with "free").
type Domain struct {
	global atomic.Uint64
	// deferredPages counts pages whose recycling was deferred into limbo
	// cumulatively, fed by the allocator; it lives here so telemetry has
	// one home for epoch-wide counters.
	deferredPages atomic.Int64
	slots         [NumSlots]slot
}

// NewDomain returns a ready Domain with the global epoch at 1.
func NewDomain() *Domain {
	d := &Domain{}
	d.global.Store(1)
	return d
}

// Enter claims a reader slot stamped with the current epoch, probing
// from hint%NumSlots (pass a key hash: readers scatter without sharing
// a contended counter). It returns the slot index and true, or false
// when every slot is occupied — the caller must then take the locked
// read path instead. Enter is wait-free apart from the bounded probe.
func (d *Domain) Enter(hint uint64) (int, bool) {
	e := d.global.Load()
	start := int(hint) & (NumSlots - 1)
	if start < 0 {
		start = -start
	}
	for i := 0; i < NumSlots; i++ {
		idx := (start + i) & (NumSlots - 1)
		if d.slots[idx].epoch.CompareAndSwap(0, e) {
			return idx, true
		}
	}
	return -1, false
}

// Exit releases the slot returned by Enter. The reader must not touch
// epoch-protected bytes after Exit.
func (d *Domain) Exit(i int) {
	d.slots[i].epoch.Store(0)
}

// Current returns the global epoch. Retiring writers stamp allocations
// with it AFTER unpublishing them (storing the nil box) — that order is
// what the safety argument above relies on.
func (d *Domain) Current() uint64 { return d.global.Load() }

// Advance bumps the global epoch and returns the new value. Owners call
// it at yield points (lock release, reclaim rounds) so grace periods
// expire without a dedicated background thread.
func (d *Domain) Advance() uint64 { return d.global.Add(1) }

// SafeBefore returns the exclusive upper bound of drained epochs: every
// retirement stamped strictly below it is unobservable by any present
// or future reader and may be recycled. With no active readers it is
// global+1 (a stamp equal to the current epoch is still drainable only
// when nobody holds it — hence the strict comparison at the caller).
func (d *Domain) SafeBefore() uint64 {
	min := uint64(0)
	for i := range d.slots {
		if e := d.slots[i].epoch.Load(); e != 0 && (min == 0 || e < min) {
			min = e
		}
	}
	if min == 0 {
		return d.global.Load() + 1
	}
	return min
}

// ActiveReaders counts currently claimed slots (telemetry only; the
// value is advisory under concurrency).
func (d *Domain) ActiveReaders() int {
	n := 0
	for i := range d.slots {
		if d.slots[i].epoch.Load() != 0 {
			n++
		}
	}
	return n
}

// Lag reports how many epochs the slowest active reader trails the
// global epoch — 0 when no reader is registered. A persistently high
// lag means a stuck reader is pinning limbo pages.
func (d *Domain) Lag() uint64 {
	g := d.global.Load()
	min := uint64(0)
	for i := range d.slots {
		if e := d.slots[i].epoch.Load(); e != 0 && (min == 0 || e < min) {
			min = e
		}
	}
	if min == 0 || min >= g {
		return 0
	}
	return g - min
}

// NoteDeferred adds n pages to the cumulative deferred-recycling
// counter (called by the allocator when a retirement enters limbo).
func (d *Domain) NoteDeferred(n int) {
	if n > 0 {
		d.deferredPages.Add(int64(n))
	}
}

// DeferredPages returns the cumulative number of pages whose recycling
// was deferred through limbo.
func (d *Domain) DeferredPages() int64 { return d.deferredPages.Load() }
