package kvstore

import (
	"sort"
	"sync"

	"softmem/internal/sds"
)

// hashField addresses one field of one Redis-style hash.
type hashField struct {
	key   string
	field string
}

// hashStore implements HSET/HGET-style hashes as a composed SDS: field
// values live in a soft hash table keyed by (key, field), while the
// per-key field index stays in traditional memory and is cleaned up by
// the reclaim callback — the §7 composition pattern (the paper's Redis
// integration kept keys/values traditional and freed them via callback;
// here the traditional side is the field index).
//
// Lock ordering: the Context lock (inside sds calls) is always taken before
// hashStore.mu — the reclaim callback runs under the Context lock and then
// takes mu, so no path may hold mu while calling into the table.
type hashStore struct {
	ht *sds.SoftHashTable[hashField]

	mu     sync.Mutex
	fields map[string]map[string]struct{}
}

func newHashStore(table *sds.SoftHashTable[hashField]) *hashStore {
	return &hashStore{ht: table, fields: make(map[string]map[string]struct{})}
}

// dropField removes a field from the traditional index (callback path).
func (h *hashStore) dropField(f hashField) {
	h.mu.Lock()
	if set, ok := h.fields[f.key]; ok {
		delete(set, f.field)
		if len(set) == 0 {
			delete(h.fields, f.key)
		}
	}
	h.mu.Unlock()
}

// addField records a field in the traditional index.
func (h *hashStore) addField(f hashField) {
	h.mu.Lock()
	set, ok := h.fields[f.key]
	if !ok {
		set = make(map[string]struct{})
		h.fields[f.key] = set
	}
	set[f.field] = struct{}{}
	h.mu.Unlock()
}

// HSet stores value under key's field, reporting whether the field is
// new.
func (s *Store) HSet(key, field string, value []byte) (bool, error) {
	f := hashField{key: key, field: field}
	existed := s.hashes.ht.Contains(f)
	if err := s.hashes.ht.Put(f, value); err != nil {
		return false, err
	}
	if !existed {
		s.hashes.addField(f)
	}
	return !existed, nil
}

// HGet fetches key's field; ok is false on miss (including reclaimed
// fields).
func (s *Store) HGet(key, field string) (value []byte, ok bool, err error) {
	return s.hashes.ht.Get(hashField{key: key, field: field})
}

// HDel removes fields from key's hash, returning how many existed.
func (s *Store) HDel(key string, fields ...string) (int, error) {
	n := 0
	for _, field := range fields {
		f := hashField{key: key, field: field}
		removed, err := s.hashes.ht.Delete(f)
		if err != nil {
			return n, err
		}
		if removed {
			s.hashes.dropField(f)
			n++
		}
	}
	return n, nil
}

// HLen returns the number of fields indexed under key. Fields whose
// values were reclaimed still count until accessed or swept; HGetAll
// reports only live ones.
func (s *Store) HLen(key string) int {
	s.hashes.mu.Lock()
	defer s.hashes.mu.Unlock()
	return len(s.hashes.fields[key])
}

// HExists reports whether key's field holds a live value.
func (s *Store) HExists(key, field string) bool {
	return s.hashes.ht.Contains(hashField{key: key, field: field})
}

// HGetAll returns the live fields and values of key's hash, sorted by
// field name. Reclaimed fields are absent — a caching client re-fetches
// the whole object on partial data.
func (s *Store) HGetAll(key string) (map[string][]byte, error) {
	s.hashes.mu.Lock()
	names := make([]string, 0, len(s.hashes.fields[key]))
	for f := range s.hashes.fields[key] {
		names = append(names, f)
	}
	s.hashes.mu.Unlock()
	sort.Strings(names)

	out := make(map[string][]byte, len(names))
	for _, field := range names {
		v, ok, err := s.hashes.ht.Get(hashField{key: key, field: field})
		if err != nil {
			return nil, err
		}
		if ok {
			out[field] = v
		}
	}
	return out, nil
}
