package kvstore

import (
	"strconv"
	"strings"
)

// ReplyWriter is the reply surface a ClusterHook writes through. It is
// implemented by the server's per-connection RESP writer; replies go
// into the same coalesced buffer as ordinary command replies, so hook
// output obeys the connection's flush policy.
type ReplyWriter interface {
	WriteSimple(s string)
	// WriteError writes a raw error reply ("-<msg>\r\n") without the
	// "-ERR " prefix the ordinary error path adds — cluster redirects
	// like "MOVED <slot> <addr>" need their own leading token.
	WriteError(msg string)
	WriteInteger(n int64)
	WriteBulk(b []byte)
	WriteBulkString(s string)
	WriteNil()
	WriteArrayHeader(n int)
}

// ClusterHook lets a cluster layer sit between the RESP reader and the
// store: redirecting commands whose keys this node does not own
// (-MOVED), serving cluster-administration commands, and observing
// locally applied writes for replication. A Server without a hook
// behaves exactly as before — the hook pointer is loaded once per
// command and nil skips everything.
type ClusterHook interface {
	// Claim reports whether the hook will serve this command itself
	// (cmd is the canonical uppercase name, "" when unknown). Claimed
	// commands bypass the store entirely; Claim must not write replies.
	Claim(cmd string, args [][]byte) bool
	// Handle serves a claimed command, writing exactly one reply. The
	// argument slices are parser-owned and valid only for the call.
	Handle(cmd string, args [][]byte, rw ReplyWriter)
	// OnApply observes one locally applied write (OpSet with its value,
	// or OpDel) after it succeeded, in per-connection apply order. The
	// key and value are only valid for the call; the hook copies what
	// it keeps.
	OnApply(op Op, key string, val []byte)
}

// ClusterSession is an opaque per-connection state handle minted by a
// SessionClusterHook. The server keeps one per connection and passes it
// back on every session-aware hook call; only the hook looks inside.
// Sessions are confined to their connection's goroutine, so hooks need
// no locking for state reached only through the session.
type ClusterSession any

// SessionClusterHook extends ClusterHook with per-connection sessions,
// for commands whose reply depends on what THIS connection did — WAIT
// must report how many replicas hold the session's own writes, not
// whether every replication queue on the node happens to be drained.
// When the installed hook implements it, the server routes claimed
// commands through HandleSession and applied writes through
// OnApplySession, both with the connection's session; plain ClusterHook
// users are untouched.
type SessionClusterHook interface {
	ClusterHook
	// NewSession mints one connection's session state.
	NewSession() ClusterSession
	// HandleSession is Handle with the connection's session.
	HandleSession(sess ClusterSession, cmd string, args [][]byte, rw ReplyWriter)
	// OnApplySession is OnApply with the connection's session.
	OnApplySession(sess ClusterSession, op Op, key string, val []byte)
}

// SetCluster installs (or, with nil, removes) the server's cluster
// hook. Safe to call while serving; connections pick the change up on
// their next command.
func (s *Server) SetCluster(h ClusterHook) {
	if h == nil {
		s.cluster.Store(nil)
		return
	}
	s.cluster.Store(&clusterHookBox{h: h})
}

// clusterHookBox wraps the hook interface for atomic.Pointer.
type clusterHookBox struct{ h ClusterHook }

// hook returns the installed cluster hook, nil when clustering is off.
func (s *Server) hook() ClusterHook {
	if b := s.cluster.Load(); b != nil {
		return b.h
	}
	return nil
}

// onApplyBatch forwards a settled batch's successful writes to the
// hook, in batch order.
func onApplyBatch(h ClusterHook, sess ClusterSession, cmds []Command) {
	for i := range cmds {
		c := &cmds[i]
		if c.Err != nil {
			continue
		}
		switch c.Op {
		case OpSet, OpDel:
			applyHook(h, sess, c.Op, c.Key, c.Arg)
		}
	}
}

// applyHook forwards one locally applied write to the hook, preferring
// the session-aware variant when the hook provides it.
func applyHook(h ClusterHook, sess ClusterSession, op Op, key string, val []byte) {
	if sh, ok := h.(SessionClusterHook); ok {
		sh.OnApplySession(sess, op, key, val)
		return
	}
	h.OnApply(op, key, val)
}

// IsMoved reports whether err is a cluster redirect ("MOVED <slot>
// <addr>") and, if so, returns the slot and the address of the node
// that owns it.
func IsMoved(err error) (slot int, addr string, ok bool) {
	re, isReply := err.(ReplyError)
	if !isReply {
		return 0, "", false
	}
	rest, found := strings.CutPrefix(string(re), "MOVED ")
	if !found {
		return 0, "", false
	}
	slotStr, addr, found := strings.Cut(rest, " ")
	if !found || addr == "" {
		return 0, "", false
	}
	n, convErr := strconv.Atoi(slotStr)
	if convErr != nil || n < 0 {
		return 0, "", false
	}
	return n, addr, true
}
