package kvstore

import (
	"bufio"
	"bytes"
	"io"
)

// Alloc probes: closures exercising the steady-state RESP parse and
// reply paths, shaped for testing.AllocsPerRun so cmd/kvbench can
// report allocs/op without this package importing testing. Each closure
// owns pre-warmed reusable state; calls after the first perform no heap
// allocation.

// ParseProbe returns a closure that parses one pipelined SET+GET batch
// with a reusable cmdReader.
func ParseProbe() func() {
	payload := appendCommand(nil, "SET", "probe:key", "probe-value-0123456789")
	payload = appendCommand(payload, "GET", "probe:key")
	rd := bytes.NewReader(payload)
	cr := newCmdReader(bufio.NewReader(rd))
	return func() {
		rd.Reset(payload)
		cr.lr.r.Reset(rd)
		for {
			if _, err := cr.ReadCommand(); err != nil {
				if err != io.EOF {
					panic(err)
				}
				return
			}
		}
	}
}

// ReplyProbe returns a closure that writes one OK + integer + bulk
// reply set with a reusable respWriter.
func ReplyProbe() func() {
	rw := newRespWriter(bufio.NewWriterSize(io.Discard, 4096))
	bulk := []byte("probe-value-0123456789")
	return func() {
		rw.simple("OK")
		rw.integer(1234567)
		rw.bulk(bulk)
		if err := rw.flush(); err != nil {
			panic(err)
		}
	}
}
