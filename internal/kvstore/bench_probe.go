package kvstore

import (
	"bufio"
	"bytes"
	"io"
	"runtime"

	"softmem/internal/core"
	"softmem/internal/pages"
	"softmem/internal/sds"
)

// Alloc probes: closures exercising the steady-state RESP parse and
// reply paths, shaped for testing.AllocsPerRun so cmd/kvbench can
// report allocs/op without this package importing testing. Each closure
// owns pre-warmed reusable state; calls after the first perform no heap
// allocation.

// ParseProbe returns a closure that parses one pipelined SET+GET batch
// with a reusable cmdReader.
func ParseProbe() func() {
	payload := appendCommand(nil, "SET", "probe:key", "probe-value-0123456789")
	payload = appendCommand(payload, "GET", "probe:key")
	rd := bytes.NewReader(payload)
	cr := newCmdReader(bufio.NewReader(rd))
	return func() {
		rd.Reset(payload)
		cr.lr.r.Reset(rd)
		for {
			if _, err := cr.ReadCommand(); err != nil {
				if err != io.EOF {
					panic(err)
				}
				return
			}
		}
	}
}

// ReplyProbe returns a closure that writes one OK + integer + bulk
// reply set with a reusable respWriter.
func ReplyProbe() func() {
	rw := newRespWriter(bufio.NewWriterSize(io.Discard, 4096))
	bulk := []byte("probe-value-0123456789")
	return func() {
		rw.simple("OK")
		rw.integer(1234567)
		rw.bulk(bulk)
		if err := rw.flush(); err != nil {
			panic(err)
		}
	}
}

// DispatchProbe returns a closure that routes one two-key GET batch
// through the shard-owner dispatch path (Batch route, ring submit,
// owner execute, rejoin) with fully reusable state, plus a cleanup
// func. Shaped for testing.AllocsPerRun: with premade key strings and a
// recycled Batch, a routed GET performs no per-op heap allocation.
func DispatchProbe() (probe, cleanup func()) {
	sma := core.New(core.Config{Machine: pages.NewPool(0)})
	st := New(sma, WithName("dispatch-probe"), WithShards(2))
	k1, k2 := "probe:key:a", "probe:key:b"
	if err := st.Set(k1, []byte("probe-value-0123456789")); err != nil {
		panic(err)
	}
	if err := st.Set(k2, []byte("probe-value-9876543210")); err != nil {
		panic(err)
	}
	b := st.NewBatch()
	return func() {
			b.Get(k1)
			b.Get(k2)
			if err := b.Exec(); err != nil {
				panic(err)
			}
			for i := 0; i < b.Len(); i++ {
				if c := b.Cmd(i); c.Err != nil || !c.Ok {
					panic("dispatch probe: lost key")
				}
			}
			b.Reset()
		}, func() {
			st.Close()
		}
}

// LockFreeGetProbe returns a closure that serves one single-key GET
// through the full dispatch path (Batch.Exec single-command fast path →
// Store.Do → Store.GetAppend) on a lock-free store, plus a stats func
// and a cleanup func. Shaped for testing.AllocsPerRun: the reusable
// Batch and epoch-protected optimistic read make a hit cost at most the
// one value-copy allocation. stats exposes the store's lock-free
// counters so callers can pin that every probe GET was served with zero
// locks (hits == calls, fallbacks == 0).
func LockFreeGetProbe() (probe func(), stats func() (hits, misses, fallbacks, condemned int64), cleanup func()) {
	return lockFreeGetProbe(sds.EvictOldest)
}

// LockFreeGetProbeLRU is LockFreeGetProbe on an EvictLRU store: the
// probe pins that LRU tables serve the same zero-lock optimistic GETs
// (recency survives as lazily-sampled per-entry clock stamps instead of
// list moves).
func LockFreeGetProbeLRU() (probe func(), stats func() (hits, misses, fallbacks, condemned int64), cleanup func()) {
	return lockFreeGetProbe(sds.EvictLRU)
}

func lockFreeGetProbe(policy sds.EvictPolicy) (probe func(), stats func() (hits, misses, fallbacks, condemned int64), cleanup func()) {
	sma := core.New(core.Config{Machine: pages.NewPool(0)})
	st := New(sma, WithName("lockfree-probe"), WithPolicy(policy))
	key := "probe:lockfree:key"
	if err := st.Set(key, []byte("probe-value-0123456789")); err != nil {
		panic(err)
	}
	b := st.NewBatch()
	return func() {
			b.Get(key)
			if err := b.Exec(); err != nil {
				panic(err)
			}
			if c := b.Cmd(0); c.Err != nil || !c.Ok {
				panic("lock-free probe: lost key")
			}
			b.Reset()
		}, func() (int64, int64, int64, int64) {
			return st.lockFreeTotals()
		}, func() {
			st.Close()
		}
}

// MutexContentionProbe runs fn under runtime mutex profiling and
// returns how many mutex contention events fn added. The shard-owner
// hot path holds the shard heap lock across whole batches and never
// takes a per-command mutex, so a single-connection run reports zero
// contention events in store code.
func MutexContentionProbe(fn func()) (events int64) {
	prev := runtime.SetMutexProfileFraction(1)
	defer runtime.SetMutexProfileFraction(prev)
	before := mutexEventCount()
	fn()
	after := mutexEventCount()
	if d := after - before; d > 0 {
		return d
	}
	return 0
}

func mutexEventCount() int64 {
	var recs []runtime.BlockProfileRecord
	n, _ := runtime.MutexProfile(nil)
	recs = make([]runtime.BlockProfileRecord, n+64)
	n, _ = runtime.MutexProfile(recs)
	var total int64
	for _, r := range recs[:n] {
		total += r.Count
	}
	return total
}
