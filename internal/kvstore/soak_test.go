package kvstore

import (
	"os"
	"testing"
	"time"

	"softmem/internal/core"
	"softmem/internal/pages"
	"softmem/internal/spill"
)

// TestSoakSpill drives the YCSB-style load generator against a real
// RESP server whose store demotes to a spill tier, while a pressure
// loop plays the daemon and squeezes the store throughout the run.
// It is the `make soak-spill` target; skipped unless SOFTMEM_SOAK is
// set so the ordinary test suite stays fast.
func TestSoakSpill(t *testing.T) {
	if os.Getenv("SOFTMEM_SOAK") == "" {
		t.Skip("set SOFTMEM_SOAK=1 (or run `make soak-spill`) to run the spill soak")
	}

	sp, err := spill.Open(spill.Config{
		Dir:             t.TempDir(),
		BudgetBytes:     64 << 20,
		CompactInterval: 2 * time.Second,
	})
	if err != nil {
		t.Fatalf("spill.Open: %v", err)
	}
	defer sp.Close()

	sma := core.New(core.Config{Machine: pages.NewPool(0)})
	st := NewFromConfig(Config{SMA: sma, Shards: 4, Spill: sp})
	defer st.Close()

	srv := NewServer(st, t.Logf)
	addr, err := srv.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve()
	defer srv.Close()

	// The pressure loop: a stand-in daemon demanding pages every few
	// milliseconds, so entries demote continuously during the load.
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				sma.HandleDemand(64)
			}
		}
	}()

	res, err := RunLoad(LoadGenConfig{
		Addr:         addr.String(),
		Conns:        8,
		Requests:     200000,
		ReadFraction: DefaultReadFraction,
		Keys:         20000,
		ValueBytes:   1024,
		Seed:         1,
	})
	close(stop)
	<-done
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	res.Fprint(os.Stderr)

	stats := st.Stats()
	spSt := sp.Stats()
	t.Logf("spill: demotions=%d promotions=%d hits=%d misses=%d compactions=%d on_disk=%d",
		spSt.Demotions, spSt.Promotions, spSt.Hits, spSt.Misses, spSt.Compactions, sp.BytesOnDisk())

	if spSt.Demotions == 0 {
		t.Fatal("soak produced no demotions — pressure loop ineffective")
	}
	if stats.Promotions == 0 {
		t.Fatal("soak produced no promotions — spill reads never happened")
	}
	if spSt.CorruptRecords != 0 || spSt.WriteErrors != 0 {
		t.Fatalf("spill integrity violated: corrupt=%d write_errors=%d",
			spSt.CorruptRecords, spSt.WriteErrors)
	}
	if res.HitRate() < 0.5 {
		t.Fatalf("hit rate %.1f%% under spill — promotion path not recovering demoted keys",
			100*res.HitRate())
	}
}
