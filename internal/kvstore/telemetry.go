package kvstore

import (
	"sync"
	"sync/atomic"
	"time"

	"softmem/internal/metrics"
)

// RegisterMetrics registers the store's operation counters and occupancy
// gauges into r, bridging the existing atomic counters so /metrics and
// Stats() always agree.
func (s *Store) RegisterMetrics(r *metrics.Registry) {
	counter := func(name, help string, v *atomic.Int64) {
		r.CounterFunc(name, help, v.Load)
	}
	counter("softmem_kv_sets_total", "SET-family writes", &s.sets)
	counter("softmem_kv_gets_total", "GET-family reads", &s.gets)
	counter("softmem_kv_hits_total", "reads that found the key", &s.hits)
	counter("softmem_kv_misses_total", "reads that missed", &s.misses)
	counter("softmem_kv_dels_total", "deletions", &s.dels)
	counter("softmem_kv_reclaimed_total", "entries revoked under memory pressure", &s.reclaimed)
	counter("softmem_kv_expired_total", "entries collected by TTL expiry", &s.expired)
	counter("softmem_kv_promotions_total", "reads served by faulting a value in from the spill tier", &s.promotions)
	r.GaugeFunc("softmem_kv_entries", "live string entries across all shards",
		func() float64 { return float64(s.Len()) })
	r.GaugeFunc("softmem_kv_soft_live_bytes", "live soft-heap bytes across the store's SDS contexts",
		func() float64 { return float64(s.HeapStats().LiveBytes) })
	r.GaugeFunc("softmem_kv_soft_pages", "soft pages held across the store's SDS contexts",
		func() float64 { return float64(s.HeapStats().PagesHeld) })

	// Lock-free read path: hits/misses served with zero locks, and the
	// two ways an optimistic attempt falls back to the locked path.
	r.CounterFunc("softmem_kv_lockfree_hits_total",
		"reads served by the epoch-protected optimistic path with zero locks",
		func() int64 { h, _, _, _ := s.lockFreeTotals(); return h })
	r.CounterFunc("softmem_kv_lockfree_misses_total",
		"definite misses served by the optimistic path with zero locks",
		func() int64 { _, m, _, _ := s.lockFreeTotals(); return m })
	r.CounterFunc("softmem_kv_lockfree_fallbacks_total",
		"optimistic reads that fell back to the locked path (reader-slot exhaustion or lock-free unavailable)",
		func() int64 { _, _, f, _ := s.lockFreeTotals(); return f })
	r.CounterFunc("softmem_kv_condemned_retries_total",
		"optimistic reads that found their entry condemned mid-flight (value revoked or replaced) and retried via the locked path",
		func() int64 { _, _, _, c := s.lockFreeTotals(); return c })

	// Shard-owner engine instrumentation: queue depth and owner
	// utilization, summed across shards from the per-shard atomics.
	counter("softmem_kv_overloaded_total",
		"commands shed with ErrOverloaded because a shard owner's ring was full", &s.overloaded)
	r.CounterFunc("softmem_kv_owner_commands_total",
		"commands executed by shard owner goroutines",
		func() int64 { return s.EngineStats().Commands })
	r.CounterFunc("softmem_kv_owner_batches_total",
		"shard batches executed by shard owner goroutines",
		func() int64 { return s.EngineStats().Batches })
	r.CounterFunc("softmem_kv_owner_busy_ns_total",
		"nanoseconds shard owners spent executing (vs blocked on their rings)",
		func() int64 { return s.EngineStats().BusyNs })
	r.CounterFunc("softmem_kv_owner_lock_acquisitions_total",
		"times shard owners (re)took their heap lock; commands-per-acquisition is the lock-amortization factor",
		func() int64 { return s.EngineStats().LockAcquisitions })
	r.GaugeFunc("softmem_kv_ring_depth",
		"shard batches queued in owner command rings, summed across shards",
		func() float64 {
			depth := 0
			for _, sh := range s.shards {
				depth += len(sh.ring)
			}
			return float64(depth)
		})

	// Enabling the registry also arms latency attribution: per-phase
	// histograms and the slow-request log. Until this store, the engine's
	// span paths are a single nil pointer load.
	s.attrib.Store(newAttribState(r, s.slowThresholdNs, s.slowSize))
}

// cmdMetrics lazily materializes one latency histogram per RESP command
// under a shared metric name, so label cardinality tracks the command
// set actually exercised.
type cmdMetrics struct {
	reg *metrics.Registry
	m   sync.Map // command -> *metrics.Histogram
}

// knownCommands bounds the cmd label's cardinality: client-supplied
// command names that the server does not implement collapse to "OTHER"
// instead of minting a time series each.
var knownCommands = map[string]bool{
	"PING": true, "QUIT": true, "SET": true, "GET": true, "MSET": true,
	"MGET": true, "INCR": true, "DECR": true, "INCRBY": true, "DECRBY": true,
	"APPEND": true, "EXPIRE": true, "TTL": true, "PERSIST": true, "STRLEN": true,
	"LPUSH": true, "RPUSH": true, "LPOP": true, "RPOP": true, "LLEN": true,
	"LRANGE": true, "HSET": true, "HGET": true, "HDEL": true, "HLEN": true,
	"HEXISTS": true, "HGETALL": true, "DEL": true, "EXISTS": true, "KEYS": true,
	"DBSIZE": true, "FLUSHALL": true, "INFO": true,
	// Cluster-mode commands, served by the installed ClusterHook.
	"CLUSTER": true, "RSET": true, "RDEL": true, "WAIT": true,
}

func (c *cmdMetrics) observe(cmd string, d time.Duration) {
	if !knownCommands[cmd] {
		cmd = "OTHER"
	}
	if h, ok := c.m.Load(cmd); ok {
		h.(*metrics.Histogram).ObserveDuration(d)
		return
	}
	// Registry instruments are get-or-create, so a racing double-create
	// lands on the same histogram either way.
	h := c.reg.Histogram("softmem_kv_cmd_ns", "RESP command latency in ns by command",
		metrics.Label{Name: "cmd", Value: cmd})
	c.m.Store(cmd, h)
	h.ObserveDuration(d)
}

// RegisterMetrics switches on per-command latency histograms, registered
// into r as they are first exercised, and the server's flush-coalescing
// counter.
func (s *Server) RegisterMetrics(r *metrics.Registry) {
	r.CounterFunc("softmem_kv_flush_coalesced_total",
		"replies whose flush was deferred because more pipelined input was buffered (write syscalls saved)",
		s.flushCoalesced.Load)
	s.met.Store(&cmdMetrics{reg: r})
}
