package kvstore

import (
	"context"
	"runtime/pprof"
	"sort"
	"sync/atomic"
	"time"

	"softmem/internal/core"
	"softmem/internal/metrics"
)

// Latency attribution: every command executed through the engine carries
// a per-phase span (a plain array in its Command slot — stack/arena
// allocated with the batch, nothing heap-per-request) that decomposes
// its latency into where the time actually went. The phases answer the
// paper's core observability question — "did softening memory stall this
// request?" — by separating reclaim-yield stalls and spill traffic from
// plain queueing and execution.
//
// Per-command phases (disjoint; they sum to the command's wall time):
const (
	// phaseQueue is time the command's shard group waited in the owner's
	// MPSC ring before an owner picked it up (0 on the caller-runs path).
	phaseQueue = iota
	// phaseLockWait is time blocked acquiring the shard heap lock.
	phaseLockWait
	// phaseYieldStall is time inside contended Owned.Yield windows — the
	// owner handed the lock to a waiter (above all, a reclamation
	// demand) and re-took it. This is the reclaim-stall signal.
	phaseYieldStall
	// phaseSpillPromote is time faulting a demoted value back in from
	// the spill tier on a GET miss (minus its own lock re-acquisition,
	// which stays in phaseLockWait).
	phaseSpillPromote
	// phaseExec is the residual: actual command execution under the
	// held lock.
	phaseExec
	numCmdPhases
)

// Globally observed phases, fed into the same softmem_kv_phase_ns
// family but not carried in per-command spans:
const (
	// phaseSpillDemote is the synchronous disk write demoting a revoked
	// entry, observed from the reclaim callback.
	phaseSpillDemote = numCmdPhases + iota
	// phaseReplHop is owner-enqueue-to-replica-apply latency of a
	// replicated write, observed replica-side from the origin timestamp
	// the cluster layer carries on RSET/RDEL.
	phaseReplHop
	numPhases
)

// phaseLabels names each phase's series. These literals are the single
// source of phase label values; cmd/metricslint cross-checks them
// against the docs/OBSERVABILITY.md catalogue.
var phaseLabels = [numPhases]metrics.Label{
	phaseQueue:        {Name: "phase", Value: "queue"},
	phaseLockWait:     {Name: "phase", Value: "lock_wait"},
	phaseYieldStall:   {Name: "phase", Value: "yield_stall"},
	phaseSpillPromote: {Name: "phase", Value: "spill_promote"},
	phaseExec:         {Name: "phase", Value: "exec"},
	phaseSpillDemote:  {Name: "phase", Value: "spill_demote"},
	phaseReplHop:      {Name: "phase", Value: "repl_hop"},
}

// epoch anchors nowNanos: queue-wait stamps use monotonic nanoseconds so
// wall-clock jumps cannot produce negative waits.
var epoch = time.Now()

func nowNanos() int64 { return time.Since(epoch).Nanoseconds() }

// attribState is the attribution layer's enabled state: phase histograms
// plus the slow-request log. It hangs off the Store behind an atomic
// pointer (nil until Store.RegisterMetrics), so the disabled hot path
// pays one pointer load and zero allocations — same discipline as the
// server's cmdMetrics.
type attribState struct {
	phases [numPhases]*metrics.Histogram
	slow   *slowLog
}

func newAttribState(r *metrics.Registry, slowThresholdNs int64, slowSize int) *attribState {
	a := &attribState{slow: newSlowLog(slowThresholdNs, slowSize)}
	for i := range a.phases {
		a.phases[i] = r.Histogram("softmem_kv_phase_ns",
			"per-command latency by attribution phase in ns; zero-duration phases are not observed",
			phaseLabels[i])
	}
	return a
}

// observeCmd feeds one executed command's span into the phase
// histograms. Zero phases are skipped: an uncontended command costs two
// observations (queue on the ring path, exec), and each histogram reads
// as "time spent when the phase occurred at all".
func (a *attribState) observeCmd(c *Command) {
	for i := 0; i < numCmdPhases; i++ {
		if n := c.phaseNs[i]; n > 0 {
			a.phases[i].ObserveDuration(time.Duration(n))
		}
	}
}

// observeInline attributes one serially executed command (the
// unpipelined fast path, which bypasses the engine): its whole wall time
// is exec, and it still lands in the slowlog past the threshold. The key
// is extracted (and allocated) only when the entry is actually recorded.
func (a *attribState) observeInline(cmd string, args [][]byte, d time.Duration) {
	a.phases[phaseExec].ObserveDuration(d)
	if n := d.Nanoseconds(); n >= a.slow.thresholdNs {
		key := ""
		if len(args) >= 2 {
			key = string(args[1])
		}
		a.slow.record(SlowEntry{Cmd: cmd, Key: key, TotalNs: n, ExecNs: n})
	}
}

// SlowEntry is one slow request as kept by the slow-request log and
// served on /slowlog: the command, its dominant key, and the full phase
// breakdown in nanoseconds.
type SlowEntry struct {
	Seq            uint64 `json:"seq"`
	UnixNs         int64  `json:"unix_ns"`
	Cmd            string `json:"cmd"`
	Key            string `json:"key,omitempty"`
	TotalNs        int64  `json:"total_ns"`
	QueueNs        int64  `json:"queue_ns,omitempty"`
	LockWaitNs     int64  `json:"lock_wait_ns,omitempty"`
	YieldStallNs   int64  `json:"yield_stall_ns,omitempty"`
	SpillPromoteNs int64  `json:"spill_promote_ns,omitempty"`
	ExecNs         int64  `json:"exec_ns,omitempty"`
}

// slowLog is a lock-free ring of the last N requests over the latency
// threshold, Redis SLOWLOG style but with phase attribution. Writers
// claim a slot by sequence and publish a fresh entry with one atomic
// pointer store; readers snapshot whatever is published. Recording only
// happens for requests already past the threshold, so the one heap
// allocation per recorded entry is off the hot path by construction.
type slowLog struct {
	thresholdNs int64
	seq         atomic.Uint64
	slots       []atomic.Pointer[SlowEntry]
}

func newSlowLog(thresholdNs int64, size int) *slowLog {
	return &slowLog{thresholdNs: thresholdNs, slots: make([]atomic.Pointer[SlowEntry], size)}
}

// record publishes e with a fresh sequence number and timestamp,
// overwriting the oldest slot.
func (l *slowLog) record(e SlowEntry) {
	e.Seq = l.seq.Add(1)
	e.UnixNs = time.Now().UnixNano()
	l.slots[(e.Seq-1)%uint64(len(l.slots))].Store(&e)
}

// snapshot returns the published entries, newest first.
func (l *slowLog) snapshot() []SlowEntry {
	out := make([]SlowEntry, 0, len(l.slots))
	for i := range l.slots {
		if e := l.slots[i].Load(); e != nil {
			out = append(out, *e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq > out[j].Seq })
	return out
}

// SlowLog returns the slow-request log, newest first (nil until
// RegisterMetrics enables attribution). Served as /slowlog by the
// binaries and rendered by `smdctl slowlog`.
func (s *Store) SlowLog() []SlowEntry {
	if a := s.attrib.Load(); a != nil {
		return a.slow.snapshot()
	}
	return nil
}

// ObserveReplHop feeds one replicated write's origin-to-apply latency
// into the phase histograms (phase="repl_hop"). The cluster layer calls
// it replica-side; a no-op until attribution is enabled.
func (s *Store) ObserveReplHop(d time.Duration) {
	if a := s.attrib.Load(); a != nil && d > 0 {
		a.phases[phaseReplHop].ObserveDuration(d)
	}
}

// profLabels gates runtime/pprof labels around owner-side command
// execution. Off by default: labeling allocates per command, so the
// softkv binary switches it on only under -pprof, where CPU profiles
// then attribute samples to (cmd, shard).
var profLabels atomic.Bool

// EnableProfilerLabels turns on pprof (cmd, shard) labels around command
// execution on shard owners and caller-runs batches.
func EnableProfilerLabels() { profLabels.Store(true) }

// opNames names each Op for pprof labels.
var opNames = [...]string{
	OpGet: "GET", OpSet: "SET", OpDel: "DEL", OpIncr: "INCR",
	OpAppend: "APPEND", OpStrLen: "STRLEN", OpExists: "EXISTS",
	OpExpire: "EXPIRE", OpTTL: "TTL", OpPersist: "PERSIST",
	opSweep: "SWEEP",
}

// execLabeled runs one command, wrapping it in pprof labels when -pprof
// enabled them; otherwise it is a single atomic load over execOwned.
func (s *Store) execLabeled(o *core.Owned, sh *shard, c *Command) {
	if !profLabels.Load() {
		s.execOwned(o, sh, c)
		return
	}
	pprof.Do(context.Background(), pprof.Labels("cmd", opNames[c.Op], "shard", sh.label),
		func(context.Context) { s.execOwned(o, sh, c) })
}
