package kvstore

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync/atomic"
	"testing"
)

func TestAsciiInt(t *testing.T) {
	cases := []struct {
		in   string
		want int
		ok   bool
	}{
		{"0", 0, true},
		{"42", 42, true},
		{"-1", -1, true},
		{"+7", 7, true},
		{"", 0, false},
		{"-", 0, false},
		{"1x", 0, false},
		{" 1", 0, false},
		{"999999999999999999", 999999999999999999, true},
		{"9999999999999999999", 0, false}, // 19 digits: rejected
	}
	for _, c := range cases {
		got, ok := asciiInt([]byte(c.in))
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("asciiInt(%q) = %d, %v; want %d, %v", c.in, got, ok, c.want, c.ok)
		}
	}
}

func parseAll(t *testing.T, input string) ([][]string, error) {
	t.Helper()
	cr := newCmdReader(bufio.NewReader(strings.NewReader(input)))
	var out [][]string
	for {
		args, err := cr.ReadCommand()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		if args == nil {
			continue
		}
		cmd := make([]string, len(args))
		for i, a := range args {
			cmd[i] = string(a)
		}
		out = append(out, cmd)
	}
}

func TestReadCommandForms(t *testing.T) {
	got, err := parseAll(t, "*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$2\r\nvv\r\n\r\nGET k\r\n")
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"SET", "k", "vv"}, {"GET", "k"}}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("parsed %v, want %v", got, want)
	}
}

// TestReadCommandLineCap is the parser-DoS regression: a hostile client
// streaming a header or inline line with no newline must hit a bounded
// protocol error instead of growing memory without limit.
func TestReadCommandLineCap(t *testing.T) {
	long := strings.Repeat("A", maxLine+1)
	for _, in := range []string{
		long,                // inline, never terminated
		long + "\r\n",       // inline, terminated but oversized
		"*" + long + "\r\n", // oversized array header
	} {
		_, err := parseAll(t, in)
		if !errors.Is(err, ErrProtocol) {
			t.Fatalf("input len %d: err = %v, want ErrProtocol", len(in), err)
		}
	}
	// Just under the cap still parses (as an inline command).
	got, err := parseAll(t, strings.Repeat("B", 1000)+"\r\n")
	if err != nil || len(got) != 1 {
		t.Fatalf("under-cap line: %v, %v", got, err)
	}
}

func TestReadCommandBounds(t *testing.T) {
	if _, err := parseAll(t, fmt.Sprintf("*2\r\n$3\r\nGET\r\n$%d\r\nx\r\n", maxBulk+1)); !errors.Is(err, ErrProtocol) {
		t.Fatalf("oversized bulk: %v", err)
	}
	if _, err := parseAll(t, fmt.Sprintf("*%d\r\n", maxArgs+1)); !errors.Is(err, ErrProtocol) {
		t.Fatalf("oversized arity: %v", err)
	}
}

func TestReplyReaderErrors(t *testing.T) {
	rr := replyReader{lr: lineReader{r: bufio.NewReader(strings.NewReader("-ERR boom\r\n+OK\r\n"))}}
	_, _, err := rr.read()
	var re ReplyError
	if !errors.As(err, &re) || string(re) != "boom" {
		t.Fatalf("err = %#v, want ReplyError(boom)", err)
	}
	v, ok, err := rr.read()
	if err != nil || !ok || string(v) != "OK" {
		t.Fatalf("after error reply: %q, %v, %v", v, ok, err)
	}
}

// countingConn wraps a net.Conn and counts Write calls — the syscall
// proxy for the flush-coalescing assertions.
type countingConn struct {
	net.Conn
	writes atomic.Int64
}

func (c *countingConn) Write(p []byte) (int, error) {
	c.writes.Add(1)
	return c.Conn.Write(p)
}

// pipelineScript is the command mix for the coalescing test: writes,
// reads, numeric ops, a per-command server error (wrong arity), and an
// unknown command, so the oracle comparison covers every reply type.
func pipelineScript(n int) [][]string {
	var cmds [][]string
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("k%d", i%8)
		switch i % 6 {
		case 0:
			cmds = append(cmds, []string{"SET", key, fmt.Sprintf("value-%d", i)})
		case 1:
			cmds = append(cmds, []string{"GET", key})
		case 2:
			cmds = append(cmds, []string{"INCR", "ctr"})
		case 3:
			cmds = append(cmds, []string{"GET", "missing-key"})
		case 4:
			cmds = append(cmds, []string{"SET"}) // arity error: "-ERR ..."
		default:
			cmds = append(cmds, []string{"BOGUS", key})
		}
	}
	return cmds
}

// runScript drives srv.serveConn over a pipe, writing the commands in
// batches of batch (batch <= 1 means one command per write, waiting for
// each reply: the per-command-flush oracle). It returns the raw reply
// bytes and the number of server-side Write calls.
func runScript(t *testing.T, srv *Server, cmds [][]string, batch int) ([]byte, int64) {
	t.Helper()
	clientEnd, serverEnd := net.Pipe()
	cc := &countingConn{Conn: serverEnd}
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.serveConn(cc)
	}()

	var raw bytes.Buffer
	rr := replyReader{lr: lineReader{r: bufio.NewReader(io.TeeReader(clientEnd, &raw))}}
	readReplies := func(n int) {
		for i := 0; i < n; i++ {
			if _, _, err := rr.read(); err != nil {
				if _, isReply := err.(ReplyError); !isReply {
					t.Errorf("reply %d: %v", i, err)
					return
				}
			}
		}
	}
	if batch < 1 {
		batch = 1
	}
	for start := 0; start < len(cmds); start += batch {
		end := start + batch
		if end > len(cmds) {
			end = len(cmds)
		}
		var req []byte
		for _, c := range cmds[start:end] {
			req = appendCommand(req, c...)
		}
		werr := make(chan error, 1)
		go func() { _, err := clientEnd.Write(req); werr <- err }()
		readReplies(end - start)
		if err := <-werr; err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	clientEnd.Close()
	<-done
	return raw.Bytes(), cc.writes.Load()
}

// TestPipelinedRepliesMatchOracle writes N commands per batch and
// asserts the replies are byte-identical to a per-command-flush oracle
// run, in order, while the server issues far fewer writes than replies.
func TestPipelinedRepliesMatchOracle(t *testing.T) {
	const n = 96
	cmds := pipelineScript(n)

	oracleStore, _ := newStore(t, 0)
	oracleSrv := NewServer(oracleStore, func(string, ...any) {})
	oracleBytes, oracleWrites := runScript(t, oracleSrv, cmds, 1)
	if oracleWrites < int64(n) {
		t.Fatalf("oracle coalesced: %d writes for %d commands", oracleWrites, n)
	}

	pipeStore, _ := newStore(t, 0)
	pipeSrv := NewServer(pipeStore, func(string, ...any) {})
	pipeBytes, pipeWrites := runScript(t, pipeSrv, cmds, n)

	if !bytes.Equal(pipeBytes, oracleBytes) {
		t.Fatalf("pipelined replies diverge from oracle:\npipelined: %q\noracle:    %q", pipeBytes, oracleBytes)
	}
	if pipeWrites >= int64(n)/4 {
		t.Fatalf("pipelined path not coalescing: %d writes for %d commands", pipeWrites, n)
	}
	if pipeSrv.flushCoalesced.Load() == 0 {
		t.Fatal("flushCoalesced counter did not advance")
	}
	if oracleSrv.flushCoalesced.Load() != 0 {
		t.Fatalf("oracle run coalesced %d flushes", oracleSrv.flushCoalesced.Load())
	}
}

func TestLoadGenDefaults(t *testing.T) {
	cases := []struct {
		name             string
		in               LoadGenConfig
		wantReadFraction float64
		wantSkew         float64
		wantErr          bool
	}{
		{"zero-config", LoadGenConfig{}, 0, DefaultSkew, false},
		{"negative-read-fraction-defaults", LoadGenConfig{ReadFraction: -1}, DefaultReadFraction, DefaultSkew, false},
		{"explicit-write-only-honored", LoadGenConfig{ReadFraction: 0}, 0, DefaultSkew, false},
		{"explicit-read-fraction-kept", LoadGenConfig{ReadFraction: 0.5}, 0.5, DefaultSkew, false},
		{"read-fraction-over-one-rejected", LoadGenConfig{ReadFraction: 1.5}, 1.5, DefaultSkew, true},
		{"zero-skew-defaults", LoadGenConfig{Skew: 0}, 0, DefaultSkew, false},
		{"negative-skew-defaults", LoadGenConfig{Skew: -2}, 0, DefaultSkew, false},
		{"low-skew-rejected", LoadGenConfig{Skew: 0.99}, 0, 0.99, true},
		{"skew-one-rejected", LoadGenConfig{Skew: 1}, 0, 1, true},
		{"high-skew-kept", LoadGenConfig{Skew: 1.01}, 0, 1.01, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := c.in
			cfg.setDefaults()
			err := cfg.validate()
			if (err != nil) != c.wantErr {
				t.Fatalf("validate() = %v, wantErr=%v", err, c.wantErr)
			}
			if cfg.ReadFraction != c.wantReadFraction {
				t.Errorf("ReadFraction = %v, want %v", cfg.ReadFraction, c.wantReadFraction)
			}
			if cfg.Skew != c.wantSkew {
				t.Errorf("Skew = %v, want %v", cfg.Skew, c.wantSkew)
			}
		})
	}
	// RunLoad surfaces validation errors instead of dialling.
	if _, err := RunLoad(LoadGenConfig{Addr: "127.0.0.1:1", Requests: 10, Skew: 0.5}); err == nil {
		t.Fatal("RunLoad accepted Zipf skew 0.5")
	}
}

// TestLoadGenPipelined exercises the batched client path end to end.
func TestLoadGenPipelined(t *testing.T) {
	_, addr, _, _ := startKV(t)
	res, err := RunLoad(LoadGenConfig{
		Addr: addr, Conns: 2, Requests: 4000, Pipeline: 16,
		ReadFraction: 0.8, Keys: 500, ValueBytes: 128, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Gets == 0 || res.Sets == 0 {
		t.Fatalf("ops: gets=%d sets=%d", res.Gets, res.Sets)
	}
	if res.Gets+res.Sets < int64(res.Requests) {
		t.Fatalf("only %d ops for %d requests", res.Gets+res.Sets, res.Requests)
	}
	if res.HitRate() == 0 {
		t.Fatal("zipf + refill workload never hit")
	}
}

// TestClientPipeline checks ordering, per-command errors, and reuse.
func TestClientPipeline(t *testing.T) {
	_, addr, _, _ := startKV(t)
	cli, err := DialClient("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	pl := cli.Pipeline()
	pl.Command("SET", "a", "1")
	pl.Command("INCR", "a")
	pl.Command("GET", "a")
	pl.Command("SET") // arity error mid-batch
	pl.Command("GET", "nope")
	var got []string
	if err := pl.Exec(func(i int, v []byte, ok bool, err error) {
		switch {
		case err != nil:
			got = append(got, "err:"+err.Error())
		case !ok:
			got = append(got, "nil")
		default:
			got = append(got, string(v))
		}
	}); err != nil {
		t.Fatal(err)
	}
	want := []string{"OK", "2", "2", "err:wrong number of arguments for 'set'", "nil"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("pipeline replies %v, want %v", got, want)
	}
	if pl.Len() != 0 {
		t.Fatalf("pipeline not reset: %d queued", pl.Len())
	}
	// The pipeline is reusable after Exec.
	pl.Command("GET", "a")
	if err := pl.Exec(func(i int, v []byte, ok bool, err error) {
		if err != nil || !ok || string(v) != "2" {
			t.Errorf("reuse reply %q, %v, %v", v, ok, err)
		}
	}); err != nil {
		t.Fatal(err)
	}
}
