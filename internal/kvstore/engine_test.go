package kvstore

import (
	"bufio"
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"softmem/internal/core"
	"softmem/internal/pages"
)

// TestNewOptions exercises the functional-options constructor and the
// deprecated Config shim side by side: both must produce working stores
// with the requested shard count.
func TestNewOptions(t *testing.T) {
	sma := core.New(core.Config{Machine: pages.NewPool(0)})
	st := New(sma, WithName("opts"), WithShards(4), WithOwnerQueue(8))
	defer st.Close()
	if got := len(st.shards); got != 4 {
		t.Fatalf("WithShards(4): %d shards", got)
	}
	if st.ringSize != 8 {
		t.Fatalf("WithOwnerQueue(8): ring %d", st.ringSize)
	}
	if err := st.Set("k", []byte("v")); err != nil {
		t.Fatal(err)
	}

	sma2 := core.New(core.Config{Machine: pages.NewPool(0)})
	st2 := NewFromConfig(Config{SMA: sma2, Name: "shim", Shards: 2})
	defer st2.Close()
	if got := len(st2.shards); got != 2 {
		t.Fatalf("NewFromConfig shards: %d", got)
	}
	if err := st2.Set("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
}

// TestBatchCrossShard routes a multi-key batch over many shards and
// checks every result slot, including the batch helpers' semantics
// (MSET-style Sets, MGET-style Gets, DEL counting).
func TestBatchCrossShard(t *testing.T) {
	sma := core.New(core.Config{Machine: pages.NewPool(0)})
	st := New(sma, WithName("xshard"), WithShards(8))
	defer st.Close()

	b := st.NewBatch()
	const n = 64
	vals := make([][]byte, n)
	for i := 0; i < n; i++ {
		vals[i] = []byte(fmt.Sprintf("value-%03d", i))
		b.Set(fmt.Sprintf("key-%03d", i), vals[i])
	}
	if err := b.Exec(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := b.Cmd(i).Err; err != nil {
			t.Fatalf("set %d: %v", i, err)
		}
	}

	b.Reset()
	for i := 0; i < n; i++ {
		b.Get(fmt.Sprintf("key-%03d", i))
	}
	b.Get("missing-key")
	if err := b.Exec(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		c := b.Cmd(i)
		if c.Err != nil || !c.Ok || !bytes.Equal(c.Val, vals[i]) {
			t.Fatalf("get %d = %q, %v, %v", i, c.Val, c.Ok, c.Err)
		}
	}
	if c := b.Cmd(n); c.Ok || c.Err != nil {
		t.Fatalf("missing key: ok=%v err=%v", c.Ok, c.Err)
	}

	b.Reset()
	for i := 0; i < n; i++ {
		b.Del(fmt.Sprintf("key-%03d", i))
	}
	b.Del("missing-key")
	if err := b.Exec(); err != nil {
		t.Fatal(err)
	}
	var removed int64
	for i := 0; i <= n; i++ {
		c := b.Cmd(i)
		if c.Err != nil {
			t.Fatalf("del %d: %v", i, c.Err)
		}
		removed += c.N
	}
	if removed != n {
		t.Fatalf("removed %d of %d", removed, n)
	}
	if st.Len() != 0 {
		t.Fatalf("Len = %d after deletes", st.Len())
	}
}

// TestBatchMixedOps runs every dispatchable op through one batch and
// checks the typed results against the direct-method semantics.
func TestBatchMixedOps(t *testing.T) {
	sma := core.New(core.Config{Machine: pages.NewPool(0)})
	st := New(sma, WithName("mixed"), WithShards(4))
	defer st.Close()

	b := st.NewBatch()
	iSet := b.Set("s", []byte("abc"))
	iApp := b.Add(OpAppend, "s")
	b.Cmd(iApp).Arg = []byte("def")
	iLen := b.Add(OpStrLen, "s")
	iIncr := b.Add(OpIncr, "ctr")
	b.Cmd(iIncr).Delta = 41
	iIncr2 := b.Add(OpIncr, "ctr")
	b.Cmd(iIncr2).Delta = 1
	iEx := b.Add(OpExists, "s")
	iExp := b.Add(OpExpire, "s")
	b.Cmd(iExp).Delta = int64(time.Hour)
	iTTL := b.Add(OpTTL, "s")
	iPer := b.Add(OpPersist, "s")
	iTTL2 := b.Add(OpTTL, "s")
	if err := b.Exec(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < b.Len(); i++ {
		if err := b.Cmd(i).Err; err != nil {
			t.Fatalf("cmd %d: %v", i, err)
		}
	}
	if c := b.Cmd(iSet); c.Err != nil {
		t.Fatalf("set: %v", c.Err)
	}
	if c := b.Cmd(iApp); c.N != 6 {
		t.Fatalf("append len = %d", c.N)
	}
	if c := b.Cmd(iLen); c.N != 6 {
		t.Fatalf("strlen = %d", c.N)
	}
	if c := b.Cmd(iIncr2); c.N != 42 {
		t.Fatalf("incr = %d", c.N)
	}
	if c := b.Cmd(iEx); !c.Ok {
		t.Fatal("exists = false")
	}
	if c := b.Cmd(iExp); !c.Ok {
		t.Fatal("expire = false")
	}
	if c := b.Cmd(iTTL); !c.Ok || c.N <= 0 || c.N > int64(time.Hour) {
		t.Fatalf("ttl = %d, %v", c.N, c.Ok)
	}
	if c := b.Cmd(iPer); !c.Ok {
		t.Fatal("persist = false")
	}
	if c := b.Cmd(iTTL2); !c.Ok || c.N != -1 {
		t.Fatalf("ttl after persist = %d, %v (want -1, persisted key)", c.N, c.Ok)
	}
}

// TestEngineRace hammers the dispatch engine from many goroutines while
// reclamation, TTL sweeps, and integrity verification run concurrently:
// cross-shard MGET/MSET batches against owner-executed reclaim and
// expiry. Run with -race; the shared-nothing design means the only
// cross-goroutine state is the rings and the per-shard heap locks.
func TestEngineRace(t *testing.T) {
	sma := core.New(core.Config{Machine: pages.NewPool(256)})
	st := New(sma, WithName("race"), WithShards(4))
	defer st.Close()

	const workers = 4
	const rounds = 120
	var wg, churn sync.WaitGroup
	stop := make(chan struct{})

	// Reclaim pressure: steady page demands against the same contexts
	// the owners are executing on.
	churn.Add(1)
	go func() {
		defer churn.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			sma.HandleDemand(4)
			time.Sleep(200 * time.Microsecond)
		}
	}()
	// TTL expiry through the rings.
	churn.Add(1)
	go func() {
		defer churn.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			st.SweepExpired()
			time.Sleep(500 * time.Microsecond)
		}
	}()
	// Heap invariants under fire.
	churn.Add(1)
	go func() {
		defer churn.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := sma.VerifyIntegrity(); err != nil {
				panic(err)
			}
			time.Sleep(time.Millisecond)
		}
	}()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			b := st.NewBatch()
			val := []byte("race-value-0123456789abcdef")
			for r := 0; r < rounds; r++ {
				b.Reset()
				for i := 0; i < 16; i++ {
					b.Set(fmt.Sprintf("w%d-k%d", w, (r*16+i)%64), val)
				}
				if err := b.Exec(); err != nil {
					t.Errorf("mset: %v", err)
					return
				}
				b.Reset()
				for i := 0; i < 16; i++ {
					b.Get(fmt.Sprintf("w%d-k%d", w, i%64))
				}
				for i := 0; i < 4; i++ {
					idx := b.Add(OpExpire, fmt.Sprintf("w%d-k%d", w, i))
					b.Cmd(idx).Delta = int64(time.Microsecond)
				}
				if err := b.Exec(); err != nil {
					t.Errorf("mget: %v", err)
					return
				}
				// Reclaimed or expired keys may miss; values that do
				// arrive must be intact (no torn reads under reclaim).
				for i := 0; i < 16; i++ {
					c := b.Cmd(i)
					if c.Err == nil && c.Ok && !bytes.Equal(c.Val, val) {
						t.Errorf("torn read: %q", c.Val)
						return
					}
				}
			}
		}(w)
	}

	wg.Wait() // workers done; then stop the background churn
	close(stop)
	churn.Wait()
	if err := sma.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
}

// TestBatchOverloaded pins the shed path: with a single shard, a
// one-slot ring, and the owner parked on a held heap lock, a third
// batch must come back ErrOverloaded immediately instead of blocking
// the submitter.
func TestBatchOverloaded(t *testing.T) {
	sma := core.New(core.Config{Machine: pages.NewPool(0)})
	st := New(sma, WithName("overload"), WithShards(1), WithOwnerQueue(1))
	defer st.Close()
	if err := st.Set("k", []byte("v")); err != nil {
		t.Fatal(err)
	}

	// Park the owner: hold the shard's heap lock so the next batch it
	// pops blocks in Acquire until we let go.
	hold := make(chan struct{})
	held := make(chan struct{})
	go func() {
		_ = st.Context().Do(func(tx *core.Tx) error {
			close(held)
			<-hold
			return nil
		})
	}()
	<-held

	// Two in-flight batches: one the owner popped (blocked on Acquire),
	// one filling the single ring slot.
	var wg sync.WaitGroup
	exec := func() {
		defer wg.Done()
		b := st.NewBatch()
		b.Get("k")
		b.Get("k") // two commands: skip the single-command inline path
		if err := b.Exec(); err != nil {
			t.Errorf("in-flight batch: %v", err)
		}
		for i := 0; i < 2; i++ {
			if err := b.Cmd(i).Err; err != nil {
				t.Errorf("in-flight cmd %d: %v", i, err)
			}
		}
	}
	wg.Add(2)
	go exec()
	// Wait for the first batch to be popped by the owner (it blocks in
	// Acquire with the ring empty again), then fill the ring.
	deadline := time.Now().Add(2 * time.Second)
	for len(st.shards[0].ring) != 0 || st.shards[0].batches.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("owner never popped the first batch")
		}
		time.Sleep(100 * time.Microsecond)
	}
	go exec()
	for len(st.shards[0].ring) != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second batch never queued")
		}
		time.Sleep(100 * time.Microsecond)
	}

	// Ring full, owner busy: this one must shed.
	b := st.NewBatch()
	b.Get("k")
	b.Get("k")
	if err := b.Exec(); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	for i := 0; i < 2; i++ {
		if err := b.Cmd(i).Err; err != ErrOverloaded {
			t.Fatalf("cmd %d err = %v, want ErrOverloaded", i, err)
		}
	}
	if st.EngineStats().Overloaded != 2 {
		t.Fatalf("Overloaded = %d, want 2", st.EngineStats().Overloaded)
	}

	close(hold) // release the owner; in-flight batches complete
	wg.Wait()
}

// TestBusyReplyMapping checks both halves of the shed-load protocol:
// the server's -BUSY wire form parses into a ReplyError that
// IsOverloaded recognizes.
func TestBusyReplyMapping(t *testing.T) {
	var buf bytes.Buffer
	rw := newRespWriter(bufio.NewWriter(&buf))
	if err := rw.busy(); err != nil {
		t.Fatal(err)
	}
	if err := rw.flush(); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "-BUSY kvstore overloaded; retry later\r\n" {
		t.Fatalf("wire form %q", got)
	}
	rr := replyReader{lr: lineReader{r: bufio.NewReader(&buf)}}
	_, _, err := rr.read()
	if !IsOverloaded(err) {
		t.Fatalf("IsOverloaded(%v) = false", err)
	}
	if IsOverloaded(ReplyError("unknown command")) {
		t.Fatal("IsOverloaded misfires on ordinary reply errors")
	}
}

// BenchmarkServerPipelinedGET drives the full server path — RESP parse,
// batch routing, shard execution, reply rejoin — with one connection
// pipelining 32 GETs per round trip over loopback TCP. This is the
// depth-32 number kvbench reports, minus the load generator.
func BenchmarkServerPipelinedGET(b *testing.B) {
	sma := core.New(core.Config{Machine: pages.NewPool(0)})
	st := New(sma, WithName("bench-pipe"))
	b.Cleanup(st.Close)
	if err := st.Set("bench-key", bytes.Repeat([]byte("v"), 256)); err != nil {
		b.Fatal(err)
	}
	srv := NewServer(st, func(string, ...any) {})
	addr, err := srv.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go func() { _ = srv.Serve() }()
	b.Cleanup(func() { srv.Close() })
	cli, err := DialClient("tcp", addr.String())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { cli.Close() })

	const depth = 32
	pl := cli.Pipeline()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += depth {
		for j := 0; j < depth; j++ {
			pl.Command("GET", "bench-key")
		}
		if err := pl.Exec(func(int, []byte, bool, error) {}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestReclaimDuringRead drives GET batches while reclamation is forced
// between every round, on a pool small enough that most rounds revoke
// entries. Owners hold the heap lock across batches and yield to the
// reclaimer between commands, so reads must never observe torn values.
func TestReclaimDuringRead(t *testing.T) {
	sma := core.New(core.Config{Machine: pages.NewPool(32)})
	st := New(sma, WithName("reclaim-read"), WithShards(2))
	defer st.Close()

	val := bytes.Repeat([]byte("x"), 512)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			sma.HandleDemand(2)
		}
	}()

	b := st.NewBatch()
	for r := 0; r < 200; r++ {
		b.Reset()
		for i := 0; i < 8; i++ {
			b.Set(fmt.Sprintf("k%d", i), val)
		}
		_ = b.Exec()
		b.Reset()
		for i := 0; i < 8; i++ {
			b.Get(fmt.Sprintf("k%d", i))
		}
		_ = b.Exec()
		for i := 0; i < 8; i++ {
			c := b.Cmd(i)
			if c.Err == nil && c.Ok && !bytes.Equal(c.Val, val) {
				t.Fatalf("round %d: torn read, len=%d", r, len(c.Val))
			}
		}
	}
	close(stop)
	wg.Wait()
	if err := sma.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
}
