package kvstore

import (
	"strconv"
	"sync/atomic"
	"time"

	"softmem/internal/core"
	"softmem/internal/sds"
)

// defaultOwnerQueue is the per-shard command ring capacity (in shard
// batches, not commands). Sized so a deep pipeline across many
// connections queues without shedding, while a stalled shard sheds load
// as -BUSY instead of absorbing unbounded memory: at the default, a
// shard can hold 256 in-flight batch slices before submitters see
// ErrOverloaded.
const defaultOwnerQueue = 256

// shard is one string-table shard plus its execution state: the soft
// hash table, the shard-local TTL table, and the owner's bounded MPSC
// command ring. The owner goroutine is the only executor of ring work,
// so per-shard command execution is single-writer (shared-nothing); the
// shard's heap lock is held by the owner across whole batches and
// yielded cooperatively to reclamation demands and legacy callers.
type shard struct {
	ht    *sds.SoftHashTable[string]
	ttl   *ttlTable
	ring  chan *shardBatch
	owned *core.Owned
	label string // decimal shard index, preformatted for pprof labels

	// Owner-side telemetry (read by EngineStats/metrics).
	cmds    atomic.Int64 // commands executed by the owner
	batches atomic.Int64 // shard batches drained from the ring
	busyNs  atomic.Int64 // cumulative wall time the owner spent executing
}

// EngineStats is a snapshot of the execution engine's own accounting,
// aggregated over every shard owner.
type EngineStats struct {
	// Commands and Batches are ring work executed by owners; their ratio
	// is the realized batching factor.
	Commands int64
	Batches  int64
	// LockAcquisitions counts shard heap-lock acquisitions by executors
	// (owner goroutines and caller-runs batches alike).
	// Commands/LockAcquisitions is the lock-amortization evidence: a
	// single-key GET or SET executed under an owned lock acquires no
	// mutex of its own.
	LockAcquisitions int64
	// BusyNs is cumulative owner execution time; divided by wall time and
	// shard count it is owner utilization.
	BusyNs int64
	// Overloaded counts commands shed with ErrOverloaded.
	Overloaded int64
	// Queued is the current total ring depth (shard batches waiting);
	// RingCap is the per-shard capacity.
	Queued  int
	RingCap int
}

// EngineStats returns the engine's current counters.
func (s *Store) EngineStats() EngineStats {
	st := EngineStats{Overloaded: s.overloaded.Load(), RingCap: s.ringSize}
	for _, sh := range s.shards {
		st.Commands += sh.cmds.Load()
		st.Batches += sh.batches.Load()
		st.LockAcquisitions += sh.ht.Context().OwnedAcquisitions()
		st.BusyNs += sh.busyNs.Load()
		st.Queued += len(sh.ring)
	}
	return st
}

// submit offers one shard batch to a shard's ring without ever blocking
// the submitter: a full ring returns ErrOverloaded (the caller sheds
// the commands), a closed store returns ErrClosed. The RWMutex is
// submitter-side only — owners never touch it — so it cannot appear on
// the owner's execution path.
func (s *Store) submit(si int, g *shardBatch) error {
	s.submitMu.RLock()
	defer s.submitMu.RUnlock()
	if s.closed {
		return core.ErrClosed
	}
	select {
	case s.shards[si].ring <- g:
		return nil
	default:
		return ErrOverloaded
	}
}

// startOwners launches one owner goroutine per shard.
func (s *Store) startOwners() {
	s.stopOwners = make(chan struct{})
	for i := range s.shards {
		s.ownerWG.Add(1)
		go s.ownerLoop(s.shards[i])
	}
}

// stopEngine shuts the engine down: no new submissions, then owners
// drain their rings (completing every in-flight batch) and exit.
func (s *Store) stopEngine() {
	s.submitMu.Lock()
	if s.closed {
		s.submitMu.Unlock()
		return
	}
	s.closed = true
	s.submitMu.Unlock()
	close(s.stopOwners)
	s.ownerWG.Wait()
}

// ownerLoop is one shard's owner: it blocks on the ring, then acquires
// the shard's heap lock once and executes every queued batch
// run-to-completion, draining opportunistically while work keeps
// arriving so the lock is amortized over as many commands as possible.
// Between commands it yields the lock to any waiter (reclamation
// demands, stats, legacy direct calls) via the context's contention
// counter — one atomic load when uncontended.
func (s *Store) ownerLoop(sh *shard) {
	defer s.ownerWG.Done()
	o := sh.owned
	for {
		var g *shardBatch
		select {
		case g = <-sh.ring:
		case <-s.stopOwners:
			// Drain: every batch already submitted completes, so no
			// Exec is left waiting.
			for {
				select {
				case g := <-sh.ring:
					s.runShardBatch(o, sh, g)
				default:
					o.Release()
					return
				}
			}
		}
		start := time.Now()
		s.runShardBatch(o, sh, g)
		for {
			select {
			case g = <-sh.ring:
				s.runShardBatch(o, sh, g)
				continue
			default:
			}
			break
		}
		o.Release()
		sh.busyNs.Add(time.Since(start).Nanoseconds())
	}
}

// runShardBatch executes one shard batch's commands in order and
// completes it against the owning Batch. The heap lock is taken at most
// once for the whole slice (Yield re-takes it only when contended or
// dropped by a slow path). With attribution enabled the timed twin
// stamps each command's phase span; the disabled path is unchanged —
// one atomic pointer load, no clock reads beyond what existed before.
func (s *Store) runShardBatch(o *core.Owned, sh *shard, g *shardBatch) {
	b := g.b
	var ran int
	if a := s.attrib.Load(); a != nil {
		ran = s.runTimed(a, o, sh, g)
	} else {
		for _, ci := range g.idxs {
			c := &b.cmds[ci]
			if err := o.Yield(); err != nil {
				c.Err = err
				continue
			}
			s.execLabeled(o, sh, c)
			ran++
		}
	}
	g.idxs = g.idxs[:0]
	sh.cmds.Add(int64(ran))
	sh.batches.Add(1)
	if b.pending.Add(-1) == 0 {
		b.done <- struct{}{}
	}
}

// runTimed is runShardBatch's attribution-enabled body: the group's ring
// wait is charged to every command as queue time, and around each
// command the Owned handle's wait/stall deltas split the wall time into
// lock wait, reclaim-yield stall, spill promotion (stamped inside
// ownedLookup), and the execution residual.
func (s *Store) runTimed(a *attribState, o *core.Owned, sh *shard, g *shardBatch) int {
	b := g.b
	queueNs := int64(0)
	if g.submitNs != 0 {
		if queueNs = nowNanos() - g.submitNs; queueNs < 0 {
			queueNs = 0
		}
		g.submitNs = 0
	}
	ran := 0
	for _, ci := range g.idxs {
		c := &b.cmds[ci]
		c.phaseNs[phaseQueue] = queueNs
		w0, y0 := o.WaitNanos(), o.StallNanos()
		t0 := time.Now()
		if err := o.Yield(); err != nil {
			c.Err = err
			continue
		}
		s.execLabeled(o, sh, c)
		wall := time.Since(t0).Nanoseconds()
		c.phaseNs[phaseLockWait] = o.WaitNanos() - w0
		c.phaseNs[phaseYieldStall] = o.StallNanos() - y0
		exec := wall - c.phaseNs[phaseLockWait] - c.phaseNs[phaseYieldStall] - c.phaseNs[phaseSpillPromote]
		if exec < 0 {
			exec = 0
		}
		c.phaseNs[phaseExec] = exec
		a.observeCmd(c)
		ran++
	}
	return ran
}

// ownedExpireIfDue handles lazy TTL expiry from the owner. The check is
// one atomic load while the shard has no TTLs; an actually-due key takes
// the legacy expiry path (spill purge included) with the lock dropped,
// since that path re-enters the shard through its public methods.
func (s *Store) ownedExpireIfDue(o *core.Owned, sh *shard, key string) error {
	if !sh.ttl.due(key) {
		return nil
	}
	o.Release()
	s.expireIfDue(key)
	return o.Acquire()
}

// ownedLookup reads key under the owned lock, falling back to the spill
// promotion path (lock dropped — it re-enters via ht.Put) on a miss.
// With attribution enabled the promotion window is stamped into the
// command's span, minus its own lock re-acquisition (which the caller
// already accounts as lock wait).
func (s *Store) ownedLookup(o *core.Owned, sh *shard, c *Command, dst []byte, key string) ([]byte, bool, error) {
	v, ok, err := sh.ht.GetAppendOwned(o, dst, key)
	if err != nil || ok || s.spill == nil {
		return v, ok, err
	}
	timed := s.attrib.Load() != nil
	var t0 time.Time
	var w0 int64
	if timed {
		t0, w0 = time.Now(), o.WaitNanos()
	}
	o.Release()
	v, ok, err = s.lookupAppend(dst, sh.ht, key)
	if aerr := o.Acquire(); aerr != nil && err == nil {
		err = aerr
	}
	if timed {
		if d := time.Since(t0).Nanoseconds() - (o.WaitNanos() - w0); d > 0 {
			c.phaseNs[phaseSpillPromote] = d
		}
	}
	return v, ok, err
}

// execOwned executes one command on its shard owner. Single-key GET and
// SET stay entirely under the batch-held heap lock: no mutex is
// acquired per command (TTL checks are one atomic load while the shard
// has no deadlines; counters are atomics). Spill interactions take the
// sink's own locks in the same ctx→spill order the reclaim path uses.
func (s *Store) execOwned(o *core.Owned, sh *shard, c *Command) {
	switch c.Op {
	case OpGet:
		if err := s.ownedExpireIfDue(o, sh, c.Key); err != nil {
			c.Err = err
			return
		}
		s.gets.Add(1)
		c.Val, c.Ok, c.Err = s.ownedLookup(o, sh, c, c.Val[:0], c.Key)
		if c.Ok {
			s.hits.Add(1)
		} else {
			s.misses.Add(1)
		}
	case OpSet:
		s.sets.Add(1)
		// Drop before Put, as Store.Set does; under the owned lock no
		// reclamation can demote the fresh value in between.
		s.dropSpilled(c.Key)
		s.promoClearDeleted(c.Key)
		c.Err = sh.ht.PutOwned(o, c.Key, c.Arg)
	case OpDel:
		s.dels.Add(1)
		sh.ttl.clear(c.Key)
		removed, err := sh.ht.DeleteOwned(o, c.Key)
		if s.spill != nil {
			if s.spill.Contains(c.Key) {
				removed = true
			}
			s.spill.Drop(c.Key)
			s.promoMarkDeleted(c.Key)
		}
		c.Ok, c.Err = removed, err
		if removed {
			c.N = 1
		}
	case OpIncr:
		if err := s.ownedExpireIfDue(o, sh, c.Key); err != nil {
			c.Err = err
			return
		}
		s.gets.Add(1)
		cur, ok, err := s.ownedLookup(o, sh, c, c.Val[:0], c.Key)
		c.Val = cur[:0]
		if err != nil {
			c.Err = err
			return
		}
		n := int64(0)
		if ok {
			s.hits.Add(1)
			n, err = strconv.ParseInt(string(cur), 10, 64)
			if err != nil {
				c.Err = errNotInteger(c.Key)
				return
			}
		} else {
			s.misses.Add(1)
		}
		n += c.Delta
		s.sets.Add(1)
		var nb [20]byte
		c.Err = sh.ht.PutOwned(o, c.Key, strconv.AppendInt(nb[:0], n, 10))
		c.N = n
	case OpAppend:
		if err := s.ownedExpireIfDue(o, sh, c.Key); err != nil {
			c.Err = err
			return
		}
		s.gets.Add(1)
		cur, ok, err := s.ownedLookup(o, sh, c, c.Val[:0], c.Key)
		if err != nil {
			c.Val = cur[:0]
			c.Err = err
			return
		}
		if ok {
			s.hits.Add(1)
		} else {
			s.misses.Add(1)
		}
		next := append(cur, c.Arg...)
		c.Val = next[:0] // keep the (possibly grown) scratch
		s.sets.Add(1)
		if err := sh.ht.PutOwned(o, c.Key, next); err != nil {
			c.Err = err
			return
		}
		c.N = int64(len(next))
	case OpStrLen:
		if err := s.ownedExpireIfDue(o, sh, c.Key); err != nil {
			c.Err = err
			return
		}
		v, ok, err := s.ownedLookup(o, sh, c, c.Val[:0], c.Key)
		c.Val = v[:0]
		if err != nil || !ok {
			c.N = 0
			return
		}
		c.N = int64(len(v))
	case OpExists:
		if err := s.ownedExpireIfDue(o, sh, c.Key); err != nil {
			c.Err = err
			return
		}
		c.Ok = sh.ht.ContainsOwned(o, c.Key) || (s.spill != nil && s.spill.Contains(c.Key))
	case OpExpire:
		if sh.ht.ContainsOwned(o, c.Key) || (s.spill != nil && s.spill.Contains(c.Key)) {
			sh.ttl.set(c.Key, s.now().Add(time.Duration(c.Delta)))
			c.Ok = true
		}
	case OpTTL:
		if err := s.ownedExpireIfDue(o, sh, c.Key); err != nil {
			c.Err = err
			return
		}
		if !sh.ht.ContainsOwned(o, c.Key) && !(s.spill != nil && s.spill.Contains(c.Key)) {
			c.Ok = false
			return
		}
		c.Ok = true
		if d, hasTTL := sh.ttl.remaining(c.Key); hasTTL {
			c.N = int64(d)
		} else {
			c.N = -1
		}
	case OpPersist:
		if sh.ht.ContainsOwned(o, c.Key) || (s.spill != nil && s.spill.Contains(c.Key)) {
			c.Ok = sh.ttl.clear(c.Key)
		}
	case opSweep:
		c.N = int64(s.sweepShardOwned(o, sh))
	default:
		c.Err = errUnknownOp(c.Op)
	}
}

// sweepShardOwned collects the shard's expired keys under the owned
// lock; delivered through the ring, so expiry never races the shard's
// command stream.
func (s *Store) sweepShardOwned(o *core.Owned, sh *shard) int {
	n := 0
	for _, key := range sh.ttl.expired() {
		sh.ttl.clear(key)
		removed, _ := sh.ht.DeleteOwned(o, key)
		if s.spill != nil {
			removed = s.spill.Drop(key) || removed
			s.promoMarkDeleted(key)
		}
		if removed {
			s.expired.Add(1)
			n++
		}
	}
	return n
}
