package kvstore

import (
	"bufio"
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCommand feeds arbitrary bytes into the RESP request parser: it
// must never panic and never return absurd argument counts.
func FuzzReadCommand(f *testing.F) {
	f.Add([]byte("SET key value\r\n"))
	f.Add([]byte("*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$1\r\nv\r\n"))
	f.Add([]byte("*0\r\n"))
	f.Add([]byte("*-1\r\n"))
	f.Add([]byte("$5\r\nhello\r\n"))
	f.Add([]byte("*2\r\n$3\r\nGET\r\n$1000000000\r\nx\r\n"))
	f.Add([]byte("\r\n\r\n\r\n"))
	f.Add([]byte{0xff, 0x00, '*', '9'})
	// A long newline-free stream must hit the line cap, not grow memory
	// without bound.
	f.Add(bytes.Repeat([]byte{'A'}, maxLine+100))
	f.Fuzz(func(t *testing.T, data []byte) {
		cr := newCmdReader(bufio.NewReader(bytes.NewReader(data)))
		for i := 0; i < 8; i++ { // parse a few commands per input
			args, err := cr.ReadCommand()
			if err != nil {
				return
			}
			if len(args) > maxArgs {
				t.Fatalf("parser returned %d args", len(args))
			}
		}
	})
}

// FuzzReadReply feeds arbitrary bytes into the RESP reply parser.
func FuzzReadReply(f *testing.F) {
	f.Add([]byte("+OK\r\n"))
	f.Add([]byte(":42\r\n"))
	f.Add([]byte("$-1\r\n"))
	f.Add([]byte("$3\r\nabc\r\n"))
	f.Add([]byte("-ERR nope\r\n"))
	f.Add([]byte("$99999999999\r\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bufio.NewReader(bytes.NewReader(data))
		v, _, err := readReply(r)
		if err == nil && len(v) > maxBulk {
			t.Fatalf("reply parser returned %d bytes", len(v))
		}
	})
}

// FuzzServerCommand drives the full server execute path with arbitrary
// argument vectors: no panic, and the store stays consistent.
func FuzzServerCommand(f *testing.F) {
	f.Add("SET k v")
	f.Add("GET k")
	f.Add("INCRBY n 10")
	f.Add("MGET a b c")
	f.Add("DEL a b")
	f.Add("APPEND k \x00\xff")
	f.Add("MSET a")
	f.Fuzz(func(t *testing.T, line string) {
		st, _ := newStore(t, 64)
		srv := NewServer(st, func(string, ...any) {})
		fields := strings.Fields(line)
		if len(fields) == 0 {
			return
		}
		args := make([][]byte, len(fields))
		for i, a := range fields {
			args[i] = []byte(a)
		}
		var out bytes.Buffer
		rw := newRespWriter(bufio.NewWriter(&out))
		srv.execute(rw, canonicalCommand(args[0]), args)
		rw.flush()
		if out.Len() == 0 {
			t.Fatal("command produced no reply")
		}
		// Store must still respond after arbitrary commands.
		if err := st.Set("sanity", []byte("1")); err != nil {
			t.Fatalf("store broken after %q: %v", line, err)
		}
	})
}
