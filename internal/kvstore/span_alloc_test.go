//go:build !race

package kvstore

import (
	"testing"
	"time"
)

// TestDisabledAttributionZeroAllocs pins the tentpole property of the
// latency-attribution layer: with no registry armed, the routed dispatch
// path — which now threads span stamps through ring submit, owner
// acquire, and execution — allocates nothing. Attribution must be free
// when nobody is watching. Excluded under -race because race
// instrumentation itself allocates.
func TestDisabledAttributionZeroAllocs(t *testing.T) {
	probe, cleanup := DispatchProbe()
	defer cleanup()
	probe() // warm: first batch takes the shard locks and sizes scratch
	if n := testing.AllocsPerRun(200, probe); n != 0 {
		t.Fatalf("attribution-disabled dispatch allocates %.1f allocs/op, want 0", n)
	}
}

// TestEnabledAttributionNoPerCommandAllocs documents the armed steady
// state: a
// fast (sub-threshold) routed batch observes histograms but still must
// not allocate per command — the one allocation budget belongs to slow
// requests entering the slowlog.
func TestEnabledAttributionNoPerCommandAllocs(t *testing.T) {
	st, _ := newAttribStore(t, 10*time.Second, 8) // nothing crosses the threshold
	k1, k2 := "probe:a", "probe:b"
	if err := st.Set(k1, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := st.Set(k2, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	b := st.NewBatch()
	probe := func() {
		b.Get(k1)
		b.Get(k2)
		if err := b.Exec(); err != nil {
			panic(err)
		}
		b.Reset()
	}
	probe()
	// The armed path's per-op cost is histogram observations (lock-free,
	// alloc-free); allow a small slack for the registry's internals but
	// fail on anything per-command.
	if n := testing.AllocsPerRun(200, probe) / 2; n > 1 {
		t.Fatalf("attribution-enabled routed GET allocates %.1f allocs/op, want <= 1", n)
	}
}
