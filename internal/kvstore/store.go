// Package kvstore implements a small Redis-like in-memory key-value store
// whose values live in soft memory — the paper's §5 integration, rebuilt
// as a Go substrate.
//
// Like the paper's modified Redis, the store keeps its index and keys in
// traditional memory and stores entry payloads in a soft hash table (one
// SDS with its own heap). When the machine comes under memory pressure
// and the daemon reclaims from the store, entries disappear oldest-first
// and subsequent GETs return "not found"; a caching client re-fetches
// from its database. The reclaim callback is where associated traditional
// memory is cleaned up — the paper measures that cleanup as the dominant
// reclamation cost.
//
// The string table can be sharded (Config.Shards) into several
// SoftHashTables, each with its own SDS context and heap lock, so
// concurrent clients on different keys proceed in parallel. Sharding
// trades global eviction order for throughput: each shard evicts
// oldest/LRU-first within itself, so reclamation order across the whole
// store is only approximately global. The default of one shard preserves
// the exact store-wide order.
package kvstore

import (
	"fmt"
	"math/bits"
	"path"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"softmem/internal/alloc"
	"softmem/internal/core"
	"softmem/internal/faultinject"
	"softmem/internal/metrics"
	"softmem/internal/sds"
	"softmem/internal/spill"
)

// keyOverheadBytes approximates the traditional-memory cost of one index
// entry (map bucket share, entry struct, eviction links) on 64-bit
// platforms.
const keyOverheadBytes = 64

// Config parameterizes a Store.
type Config struct {
	// SMA is the owning process's soft memory allocator (required).
	SMA *core.SMA
	// Name labels the store's SDS context. Default "kvstore".
	Name string
	// Policy selects the eviction order under reclamation. Default
	// EvictOldest (insertion order, like the paper's bucket lists).
	Policy sds.EvictPolicy
	// Priority is the store's SDS reclamation priority.
	Priority int
	// Shards splits the string table into this many SoftHashTables
	// (rounded up to a power of two), each with its own heap lock, so
	// concurrent clients scale. Eviction order under reclamation becomes
	// per-shard rather than store-global. Default 1.
	Shards int
	// OnReclaim runs for every entry revoked under memory pressure, after
	// the store's own cleanup. Optional.
	OnReclaim func(key string)
	// CleanupWork, if > 0, performs that many iterations of synthetic
	// traditional-memory cleanup per reclaimed entry, modelling the Redis
	// callback work that dominated the paper's 3.75 s reclamation.
	CleanupWork int
	// Clock supplies the time for TTL expiry. Nil means time.Now;
	// experiments inject virtual clocks.
	Clock func() time.Time
	// Spill, when non-nil, attaches a spill tier: string entries revoked
	// under memory pressure are demoted to compressed disk records
	// (namespace = Name) instead of dropped, and a GET miss transparently
	// promotes the value back through the normal soft-allocation path.
	// Nil preserves exact drop semantics.
	Spill *spill.Store
	// OwnerQueue bounds each shard owner's command ring (in shard
	// batches). 0 means the default; a full ring sheds submissions with
	// ErrOverloaded instead of blocking connection readers.
	OwnerQueue int
	// SlowLogThreshold is the latency past which a command lands in the
	// slow-request log once attribution is enabled (RegisterMetrics).
	// 0 means the 10ms default.
	SlowLogThreshold time.Duration
	// SlowLogSize bounds the slow-request log ring (default 128).
	SlowLogSize int
	// DisableLockFreeReads turns off the epoch-protected optimistic GET
	// path on the string shards. By default (false) single-key GETs are
	// served with zero locks: the shard table publishes values to an
	// atomic reader index and revocation rides the epoch grace period
	// (see internal/sds and internal/epoch). Under EvictLRU, recency is
	// kept by lazily-sampled per-entry clock stamps so the optimistic
	// path engages there too (eviction order becomes approximate). The
	// flag exists for A/B overhead measurements.
	DisableLockFreeReads bool
}

// Stats is the store's unified observability snapshot: operation
// counters, entry counts, and the aggregated soft-heap accounting across
// all of the store's SDS contexts. It is served as-is by statusz.
type Stats struct {
	Sets      int64
	Gets      int64
	Hits      int64
	Misses    int64
	Dels      int64
	Reclaimed int64 // entries revoked under memory pressure
	Expired   int64 // entries collected by TTL expiry
	Entries   int   // live string entries across all shards
	Shards    int   // string-table shard count
	// Promotions counts GET misses served by faulting a demoted value
	// back in from the spill tier (0 without one).
	Promotions int64 `json:",omitempty"`
	// LockFreeHits/LockFreeMisses count reads served by the
	// epoch-protected optimistic path with zero locks; LockFreeFallbacks
	// and CondemnedRetries count optimistic attempts that had to take
	// the locked path (reader-slot exhaustion vs a value revoked
	// mid-read). All zero when lock-free reads are disabled.
	LockFreeHits      int64 `json:",omitempty"`
	LockFreeMisses    int64 `json:",omitempty"`
	LockFreeFallbacks int64 `json:",omitempty"`
	CondemnedRetries  int64 `json:",omitempty"`
	// SpilledEntries / SpilledBytes describe the store's namespace in the
	// spill tier (0 without one). SpilledBytes counts whole-store disk
	// usage, shared with any other namespaces on the same spill store.
	SpilledEntries int   `json:",omitempty"`
	SpilledBytes   int64 `json:",omitempty"`
	// Soft aggregates heap accounting over every SDS context the store
	// owns (string shards, hash table, list table).
	Soft alloc.Stats
	// PerShard breaks the string table down by shard (entries, entries
	// reclaimed from that shard, and its heap accounting), so INFO under
	// Shards > 1 can report both correct totals and the distribution.
	PerShard []ShardStats
	// Spill is the spill store's full metric snapshot, nil when the
	// store runs without a spill tier.
	Spill *metrics.SpillSnapshot `json:",omitempty"`
}

// ShardStats describes one string-table shard.
type ShardStats struct {
	Entries   int
	Reclaimed int64 // entries revoked from this shard under pressure
	Heap      alloc.Stats
}

// Store is an embeddable soft-memory key-value store. All methods are
// safe for concurrent use. String commands execute on per-shard owner
// goroutines (see engine.go) when submitted through the Batch dispatch
// interface; the direct methods below serialize against the owners
// through each shard's heap lock.
type Store struct {
	shards      []*shard
	shardMask   uint64
	hashes      *hashStore
	lists       *listStore
	now         func() time.Time
	spill       *spill.Sink // nil without a spill tier
	promoMu     sync.Mutex
	promos      map[string]*promo // keys with an in-flight spill promotion
	expired     atomic.Int64
	sets        atomic.Int64
	gets        atomic.Int64
	hits        atomic.Int64
	misses      atomic.Int64
	dels        atomic.Int64
	reclaimed   atomic.Int64
	promotions  atomic.Int64
	promoteNs   atomic.Int64 // serving time spent inside spill promotions
	cleanupSink atomic.Int64
	overloaded  atomic.Int64

	// attrib is the latency-attribution layer, nil until RegisterMetrics
	// enables it; the hot paths load the pointer once per batch.
	attrib          atomic.Pointer[attribState]
	slowThresholdNs int64
	slowSize        int

	// Execution engine lifecycle: submitMu (submitter-side only)
	// excludes submissions against Close; stopOwners stops the owner
	// goroutines, which drain their rings before exiting.
	ringSize   int
	stopOwners chan struct{}
	ownerWG    sync.WaitGroup
	submitMu   sync.RWMutex
	closed     bool
}

// New creates a store backed by soft hash tables in sma, tuned by
// functional options — kvstore.New(sma, kvstore.WithShards(8),
// kvstore.WithSpill(sp)) — mirroring ipc.Dial's DialOptions pattern.
func New(sma *core.SMA, opts ...Option) *Store {
	cfg := Config{SMA: sma}
	for _, opt := range opts {
		opt(&cfg)
	}
	return NewFromConfig(cfg)
}

// NewFromConfig creates a store from a literal Config.
//
// Deprecated: use New with functional options. NewFromConfig remains so
// existing callers migrate incrementally; it will not grow new fields'
// validation beyond what the options enforce.
func NewFromConfig(cfg Config) *Store {
	if cfg.SMA == nil {
		panic("kvstore: Config.SMA is required")
	}
	name := cfg.Name
	if name == "" {
		name = "kvstore"
	}
	nshards := cfg.Shards
	if nshards <= 1 {
		nshards = 1
	} else if nshards&(nshards-1) != 0 {
		nshards = 1 << bits.Len(uint(nshards))
	}
	ringSize := cfg.OwnerQueue
	if ringSize <= 0 {
		ringSize = defaultOwnerQueue
	}
	now := cfg.Clock
	if now == nil {
		now = time.Now
	}
	s := &Store{now: now, ringSize: ringSize}
	s.slowThresholdNs = (10 * time.Millisecond).Nanoseconds()
	if cfg.SlowLogThreshold > 0 {
		s.slowThresholdNs = cfg.SlowLogThreshold.Nanoseconds()
	}
	s.slowSize = 128
	if cfg.SlowLogSize > 0 {
		s.slowSize = cfg.SlowLogSize
	}
	s.shardMask = uint64(nshards - 1)
	if cfg.Spill != nil {
		s.spill = cfg.Spill.Sink(name)
		s.promos = make(map[string]*promo)
	}
	onReclaim := func(key string, value []byte) {
		s.reclaimed.Add(1)
		if s.spill != nil && faultinject.Fire("kv.demote") == faultinject.None {
			// Demote instead of drop: the entry's value moves to disk
			// (last chance to persist, §3.1) and the TTL deadline stays
			// so a later promotion still respects expiry. Attribution
			// times the synchronous disk write as the spill_demote phase.
			if a := s.attrib.Load(); a != nil {
				t0 := time.Now()
				s.spill.OnReclaim(key, value)
				a.phases[phaseSpillDemote].ObserveDuration(time.Since(t0))
			} else {
				s.spill.OnReclaim(key, value)
			}
			// Tag the demotion onto the active reclaim trace, if any.
			cfg.SMA.NoteDemand("spill_demote", 1, int64(len(value)))
		} else {
			// No spill tier, or the fault point vetoed the demotion (a
			// revocation whose last-chance persist never happens): the
			// value is simply gone, which is soft memory's contract.
			s.shard(key).ttl.clear(key)
		}
		// Synthetic traditional-memory cleanup, per the paper's
		// observation that reclamation time "is spent almost
		// exclusively in Redis code, invoked via the callback, that
		// cleans up associated traditional memory".
		sink := int64(0)
		for i := 0; i < cfg.CleanupWork; i++ {
			sink += int64(i ^ len(key))
		}
		s.cleanupSink.Add(sink)
		if cfg.OnReclaim != nil {
			cfg.OnReclaim(key)
		}
	}
	s.shards = make([]*shard, nshards)
	for i := range s.shards {
		shardName := name
		if nshards > 1 {
			shardName = fmt.Sprintf("%s/%d", name, i)
		}
		ht := sds.NewSoftHashTable[string](cfg.SMA, shardName, sds.HashTableConfig[string]{
			Policy:        cfg.Policy,
			Priority:      cfg.Priority,
			KeyBytes:      func(k string) int { return len(k) + keyOverheadBytes },
			OnReclaim:     onReclaim,
			LockFreeReads: !cfg.DisableLockFreeReads,
		})
		s.shards[i] = &shard{
			ht:    ht,
			ttl:   newTTLTable(cfg.Clock),
			ring:  make(chan *shardBatch, ringSize),
			owned: ht.Context().Own(),
			label: strconv.Itoa(i),
		}
	}
	hashTable := sds.NewSoftHashTable[hashField](cfg.SMA, name+"-hashes", sds.HashTableConfig[hashField]{
		Policy:   cfg.Policy,
		Priority: cfg.Priority,
		KeyBytes: func(f hashField) int { return len(f.key) + len(f.field) + keyOverheadBytes },
		OnReclaim: func(f hashField, _ []byte) {
			s.reclaimed.Add(1)
			s.hashes.dropField(f)
		},
	})
	s.hashes = newHashStore(hashTable)
	listTable := sds.NewSoftHashTable[listElem](cfg.SMA, name+"-lists", sds.HashTableConfig[listElem]{
		Policy:   cfg.Policy,
		Priority: cfg.Priority,
		KeyBytes: seqKeyBytes,
		OnReclaim: func(e listElem, _ []byte) {
			s.reclaimed.Add(1)
			s.lists.dropElem(e)
		},
	})
	s.lists = newListStore(listTable)
	s.startOwners()
	return s
}

// shardIdx routes a key to its shard index (FNV-1a over the key).
func (s *Store) shardIdx(key string) int {
	if s.shardMask == 0 {
		return 0
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return int(h & s.shardMask)
}

// shard routes a key to its shard.
func (s *Store) shard(key string) *shard { return s.shards[s.shardIdx(key)] }

// table routes a key to its shard's hash table.
func (s *Store) table(key string) *sds.SoftHashTable[string] { return s.shard(key).ht }

// promo tracks one key's in-flight spill promotions so a concurrent
// deletion is not lost while the value travels between tiers.
type promo struct {
	refs    int
	deleted bool
}

// promoBegin registers an in-flight promotion for key. It must be
// called before Sink.Promote removes the record: once the record is
// taken, the key lives in neither tier and a concurrent Del would find
// nothing to delete.
func (s *Store) promoBegin(key string) *promo {
	s.promoMu.Lock()
	p := s.promos[key]
	if p == nil {
		p = &promo{}
		s.promos[key] = p
	}
	p.refs++
	s.promoMu.Unlock()
	return p
}

// promoEnd deregisters a promotion and reports whether a deletion hit
// the key while it was in flight.
func (s *Store) promoEnd(key string, p *promo) bool {
	s.promoMu.Lock()
	deleted := p.deleted
	p.refs--
	if p.refs == 0 && s.promos[key] == p {
		delete(s.promos, key)
	}
	s.promoMu.Unlock()
	return deleted
}

// promoMarkDeleted flags any in-flight promotion of key so its
// re-insert is rolled back; every deletion path (Del, expiry, flush)
// calls it after clearing both tiers.
func (s *Store) promoMarkDeleted(key string) {
	if s.spill == nil {
		return
	}
	s.promoMu.Lock()
	if p := s.promos[key]; p != nil {
		p.deleted = true
	}
	s.promoMu.Unlock()
}

// promoClearDeleted undoes a pending rollback: a Set that re-creates
// the key after the racing Del means the key should exist again, so the
// promotion must not delete it (the usual last-writer-wins between the
// Set and the promotion's re-insert then applies).
func (s *Store) promoClearDeleted(key string) {
	if s.spill == nil {
		return
	}
	s.promoMu.Lock()
	if p := s.promos[key]; p != nil {
		p.deleted = false
	}
	s.promoMu.Unlock()
}

// lookup reads key from the hot tier, faulting it in from the spill
// tier on a miss (the transparent promotion path). A promoted value is
// re-inserted through ht.Put — the normal soft-allocation/budget path —
// so the spill tier never bypasses the daemon's arbitration; if the
// re-insert fails under pressure, the value is demoted straight back so
// it stays recoverable, and the caller still gets it either way.
//
// A Del that lands between Promote (which removes the spill record) and
// the re-insert sees the key in neither tier; without coordination the
// re-insert would resurrect the deleted key. The promo registration
// closes that: the Del marks it, and the re-insert is rolled back —
// this Get linearizes just before the Del, so the caller still gets the
// value while the store stays deleted.
func (s *Store) lookup(ht *sds.SoftHashTable[string], key string) ([]byte, bool, error) {
	return s.lookupAppend(nil, ht, key)
}

// lookupAppend is lookup appending into dst (nil dst allocates as
// lookup always did). The hot in-memory hit avoids a per-call value
// allocation by reusing dst's capacity.
func (s *Store) lookupAppend(dst []byte, ht *sds.SoftHashTable[string], key string) ([]byte, bool, error) {
	v, ok, err := ht.GetAppend(dst, key)
	if err != nil || ok || s.spill == nil {
		return v, ok, err
	}
	t0 := s.now()
	p := s.promoBegin(key)
	sv, ok := s.spill.Promote(key)
	if !ok {
		s.promoEnd(key, p)
		s.promoteNs.Add(s.now().Sub(t0).Nanoseconds())
		return dst, false, nil
	}
	s.promotions.Add(1)
	perr := ht.Put(key, sv)
	if s.promoEnd(key, p) {
		_, _ = ht.Delete(key)
	} else if perr != nil {
		_ = s.spill.Demote(key, sv)
	}
	s.promoteNs.Add(s.now().Sub(t0).Nanoseconds())
	if dst == nil {
		return sv, true, nil
	}
	return append(dst, sv...), true, nil
}

// dropSpilled invalidates key's spill record so a stale demoted value
// cannot shadow a fresh write or survive a deletion.
func (s *Store) dropSpilled(key string) {
	if s.spill != nil {
		s.spill.Drop(key)
	}
}

// Set stores value under key, replacing any existing value. It returns
// core.ErrExhausted when soft memory cannot be obtained even after
// machine-wide reclamation.
func (s *Store) Set(key string, value []byte) error {
	s.sets.Add(1)
	// Drop before Put: the reverse order races with a reclamation that
	// demotes the fresh value between the two steps, and the Drop would
	// then destroy the only copy.
	s.dropSpilled(key)
	s.promoClearDeleted(key)
	return s.table(key).Put(key, value)
}

// Get returns a copy of the value under key; ok is false on miss —
// including entries revoked under memory pressure, unless a spill tier
// holds the demoted value, in which case it is promoted back in.
func (s *Store) Get(key string) (value []byte, ok bool, err error) {
	return s.GetAppend(nil, key)
}

// GetAppend is Get appending the value to dst and returning the
// extended slice. The RESP hot path calls it with a per-connection
// scratch so a cache hit allocates nothing; the result aliases dst's
// backing array and is only valid until dst's next reuse.
//
// On a lock-free shard (the default) the read is served optimistically
// first: zero mutexes, zero Owned acquisitions, epoch-protected byte
// copy. The locked path only runs when the optimistic read cannot
// complete (condemned entry, reader-slot exhaustion), when the key has
// a pending TTL expiry to collect, or when a miss must consult the
// spill tier for a promotion.
func (s *Store) GetAppend(dst []byte, key string) (value []byte, ok bool, err error) {
	sh := s.shard(key)
	if sh.ht.LockFree() {
		if !sh.ttl.due(key) {
			v, res := sh.ht.GetAppendLockFree(dst, key)
			switch res {
			case sds.LookupHit:
				s.gets.Add(1)
				s.hits.Add(1)
				return v, true, nil
			case sds.LookupMiss:
				if s.spill == nil {
					s.gets.Add(1)
					s.misses.Add(1)
					return v, false, nil
				}
				// A definite miss with a spill tier attached still needs the
				// locked promotion path below.
			}
		} else if res := sh.ht.ContainsLockFree(key); res == sds.LookupMiss &&
			(s.spill == nil || !s.spill.Contains(key)) {
			// The deadline is due but the key is confirmed absent from both
			// tiers (already revoked, deleted, or collected): there is
			// nothing to expire, so the miss stays lock-free — drop the
			// stale deadline without touching the shard's heap lock, exactly
			// as expireIfDue would (no expiry is counted for absent keys).
			sh.ttl.clear(key)
			s.gets.Add(1)
			s.misses.Add(1)
			return dst, false, nil
		}
	}
	s.expireIfDue(key)
	s.gets.Add(1)
	value, ok, err = s.lookupAppend(dst, sh.ht, key)
	if ok {
		s.hits.Add(1)
	} else {
		s.misses.Add(1)
	}
	return value, ok, err
}

// Del removes key, reporting whether it existed.
func (s *Store) Del(key string) (bool, error) {
	s.dels.Add(1)
	sh := s.shard(key)
	sh.ttl.clear(key)
	existed, err := sh.ht.Delete(key)
	if s.spill != nil {
		if s.spill.Contains(key) {
			existed = true
		}
		s.spill.Drop(key)
		// A value mid-promotion is in neither tier right now; flag the
		// in-flight promotion so its re-insert is rolled back.
		s.promoMarkDeleted(key)
	}
	return existed, err
}

// Exists reports whether key is present (hot tier or spilled).
func (s *Store) Exists(key string) bool {
	sh := s.shard(key)
	if sh.ht.LockFree() && !sh.ttl.due(key) {
		if sh.ht.ContainsLockFree(key) == sds.LookupHit {
			return true
		}
		// Miss or retry: the locked path settles condemned races and the
		// spill tier.
	}
	s.expireIfDue(key)
	if sh.ht.Contains(key) {
		return true
	}
	return s.spill != nil && s.spill.Contains(key)
}

// Incr adjusts the integer stored at key by delta, creating it at delta
// if absent, and returns the new value. It fails if the current value is
// not an integer.
func (s *Store) Incr(key string, delta int64) (int64, error) {
	s.expireIfDue(key)
	s.gets.Add(1)
	ht := s.table(key)
	cur, ok, err := s.lookup(ht, key)
	if err != nil {
		return 0, err
	}
	n := int64(0)
	if ok {
		s.hits.Add(1)
		n, err = strconv.ParseInt(string(cur), 10, 64)
		if err != nil {
			return 0, errNotInteger(key)
		}
	} else {
		s.misses.Add(1)
	}
	n += delta
	s.sets.Add(1)
	if err := ht.Put(key, []byte(strconv.FormatInt(n, 10))); err != nil {
		return 0, err
	}
	return n, nil
}

// Append appends data to the value at key (creating it if absent) and
// returns the new length.
func (s *Store) Append(key string, data []byte) (int, error) {
	s.expireIfDue(key)
	s.gets.Add(1)
	ht := s.table(key)
	cur, ok, err := s.lookup(ht, key)
	if err != nil {
		return 0, err
	}
	if ok {
		s.hits.Add(1)
	} else {
		s.misses.Add(1)
	}
	next := append(cur, data...)
	s.sets.Add(1)
	if err := ht.Put(key, next); err != nil {
		return 0, err
	}
	return len(next), nil
}

// StrLen returns the length of the value at key (0 if absent).
func (s *Store) StrLen(key string) int {
	s.expireIfDue(key)
	v, ok, err := s.lookup(s.table(key), key)
	if err != nil || !ok {
		return 0
	}
	return len(v)
}

// Keys returns the keys matching a glob pattern (path.Match syntax,
// which covers Redis's * and ? globs), sorted. An O(n) scan — use
// sparingly, like Redis KEYS.
func (s *Store) Keys(pattern string) ([]string, error) {
	if _, err := path.Match(pattern, ""); err != nil {
		return nil, fmt.Errorf("kvstore: bad pattern %q: %w", pattern, err)
	}
	var out []string
	collect := func(k string, _ []byte) bool {
		if ok, _ := path.Match(pattern, k); ok {
			out = append(out, k)
		}
		return true
	}
	for _, sh := range s.shards {
		// The lock-free scan keeps a full-table walk off the shard's heap
		// lock (a KEYS under load no longer stalls that shard's writes);
		// it falls back to the locked Range only when unavailable.
		if sh.ht.ScanLockFree(collect) {
			continue
		}
		if err := sh.ht.Range(collect); err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}

// Len returns the number of live entries.
func (s *Store) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.ht.Len()
	}
	return n
}

// FlushAll removes every entry.
func (s *Store) FlushAll() error {
	for _, sh := range s.shards {
		var keys []string
		if err := sh.ht.Range(func(k string, _ []byte) bool {
			keys = append(keys, k)
			return true
		}); err != nil {
			return err
		}
		for _, k := range keys {
			if _, err := sh.ht.Delete(k); err != nil {
				return err
			}
		}
	}
	if s.spill != nil {
		for _, k := range s.spill.Keys() {
			s.spill.Drop(k)
		}
		// Values mid-promotion are in neither tier nor the lists above;
		// flag every in-flight promotion so the re-inserts roll back.
		s.promoMu.Lock()
		for _, p := range s.promos {
			p.deleted = true
		}
		s.promoMu.Unlock()
	}
	return nil
}

// Stats returns the unified observability snapshot. Totals (Entries,
// Reclaimed, Soft) are store-global — the sum over every shard — and
// PerShard carries the per-shard breakdown they aggregate.
func (s *Store) Stats() Stats {
	st := Stats{
		Sets:       s.sets.Load(),
		Gets:       s.gets.Load(),
		Hits:       s.hits.Load(),
		Misses:     s.misses.Load(),
		Dels:       s.dels.Load(),
		Reclaimed:  s.reclaimed.Load(),
		Expired:    s.expired.Load(),
		Entries:    s.Len(),
		Shards:     len(s.shards),
		Promotions: s.promotions.Load(),
		Soft:       s.HeapStats(),
		PerShard:   make([]ShardStats, len(s.shards)),
	}
	for i, sh := range s.shards {
		st.PerShard[i] = ShardStats{
			Entries:   sh.ht.Len(),
			Reclaimed: sh.ht.Reclaimed(),
			Heap:      sh.ht.Context().HeapStats(),
		}
	}
	st.LockFreeHits, st.LockFreeMisses, st.LockFreeFallbacks, st.CondemnedRetries = s.lockFreeTotals()
	if s.spill != nil {
		st.SpilledEntries = s.spill.Len()
		st.SpilledBytes = s.spill.Store().BytesOnDisk()
		snap := s.spill.Store().Stats()
		st.Spill = &snap
	}
	return st
}

// lockFreeTotals sums the optimistic-read counters over the string
// shards.
func (s *Store) lockFreeTotals() (hits, misses, fallbacks, condemned int64) {
	for _, sh := range s.shards {
		h, m, f, c := sh.ht.LockFreeStats()
		hits += h
		misses += m
		fallbacks += f
		condemned += c
	}
	return hits, misses, fallbacks, condemned
}

// HeapStats aggregates heap accounting over every SDS context the store
// owns: all string shards plus the hash and list tables.
func (s *Store) HeapStats() alloc.Stats {
	var sum alloc.Stats
	add := func(h alloc.Stats) {
		sum.LiveAllocs += h.LiveAllocs
		sum.LiveBytes += h.LiveBytes
		sum.SlotBytes += h.SlotBytes
		sum.PagesHeld += h.PagesHeld
		sum.FreePages += h.FreePages
		sum.TotalAllocs += h.TotalAllocs
		sum.TotalFrees += h.TotalFrees
		sum.FailedAllocs += h.FailedAllocs
	}
	for _, sh := range s.shards {
		add(sh.ht.Context().HeapStats())
	}
	add(s.hashes.ht.Context().HeapStats())
	add(s.lists.ht.Context().HeapStats())
	return sum
}

// StallNanos returns the store's cumulative reclamation-stall time:
// owner time spent inside contended heap-lock Yields (reclaim demands
// taking their turn) across every SDS context the store owns, plus
// serving time lost to spill promotions. This is the process-level
// yield_stall + spill_promote signal; wire it into the SMA with
// sma.SetStallReporter(store.StallNanos) so the daemon's stall-aware
// QoS policy sees how much reclamation is actually costing this store.
func (s *Store) StallNanos() int64 {
	total := s.promoteNs.Load()
	for _, sh := range s.shards {
		total += sh.ht.Context().StallNanos()
	}
	total += s.hashes.ht.Context().StallNanos()
	total += s.lists.ht.Context().StallNanos()
	return total
}

// Context exposes the store's first string-shard SDS context (for stats
// and priority). With Shards > 1 use HeapStats for whole-store heap
// accounting.
func (s *Store) Context() *core.Context { return s.shards[0].ht.Context() }

// Close stops the execution engine (in-flight batches complete, new
// submissions fail with ErrClosed) and frees the store's soft memory.
func (s *Store) Close() {
	s.stopEngine()
	for _, sh := range s.shards {
		sh.ht.Close()
	}
	s.hashes.ht.Close()
	s.lists.ht.Close()
}
