// Package kvstore implements a small Redis-like in-memory key-value store
// whose values live in soft memory — the paper's §5 integration, rebuilt
// as a Go substrate.
//
// Like the paper's modified Redis, the store keeps its index and keys in
// traditional memory and stores entry payloads in a soft hash table (one
// SDS with its own heap). When the machine comes under memory pressure
// and the daemon reclaims from the store, entries disappear oldest-first
// and subsequent GETs return "not found"; a caching client re-fetches
// from its database. The reclaim callback is where associated traditional
// memory is cleaned up — the paper measures that cleanup as the dominant
// reclamation cost.
package kvstore

import (
	"fmt"
	"path"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"softmem/internal/core"
	"softmem/internal/sds"
)

// keyOverheadBytes approximates the traditional-memory cost of one index
// entry (map bucket share, entry struct, eviction links) on 64-bit
// platforms.
const keyOverheadBytes = 64

// Config parameterizes a Store.
type Config struct {
	// SMA is the owning process's soft memory allocator (required).
	SMA *core.SMA
	// Name labels the store's SDS context. Default "kvstore".
	Name string
	// Policy selects the eviction order under reclamation. Default
	// EvictOldest (insertion order, like the paper's bucket lists).
	Policy sds.EvictPolicy
	// Priority is the store's SDS reclamation priority.
	Priority int
	// OnReclaim runs for every entry revoked under memory pressure, after
	// the store's own cleanup. Optional.
	OnReclaim func(key string)
	// CleanupWork, if > 0, performs that many iterations of synthetic
	// traditional-memory cleanup per reclaimed entry, modelling the Redis
	// callback work that dominated the paper's 3.75 s reclamation.
	CleanupWork int
	// Clock supplies the time for TTL expiry. Nil means time.Now;
	// experiments inject virtual clocks.
	Clock func() time.Time
}

// Stats counts store operations.
type Stats struct {
	Sets      int64
	Gets      int64
	Hits      int64
	Misses    int64
	Dels      int64
	Reclaimed int64 // entries revoked under memory pressure
}

// Store is an embeddable soft-memory key-value store. All methods are
// safe for concurrent use.
type Store struct {
	ht          *sds.SoftHashTable[string]
	hashes      *hashStore
	lists       *listStore
	ttl         *ttlTable
	expired     atomic.Int64
	sets        atomic.Int64
	gets        atomic.Int64
	hits        atomic.Int64
	misses      atomic.Int64
	dels        atomic.Int64
	reclaimed   atomic.Int64
	cleanupSink atomic.Int64
}

// New creates a store backed by one soft hash table in cfg.SMA.
func New(cfg Config) *Store {
	if cfg.SMA == nil {
		panic("kvstore: Config.SMA is required")
	}
	name := cfg.Name
	if name == "" {
		name = "kvstore"
	}
	s := &Store{ttl: newTTLTable(cfg.Clock)}
	s.ht = sds.NewSoftHashTable[string](cfg.SMA, name, sds.HashTableConfig[string]{
		Policy:   cfg.Policy,
		Priority: cfg.Priority,
		KeyBytes: func(k string) int { return len(k) + keyOverheadBytes },
		OnReclaim: func(key string, _ []byte) {
			s.reclaimed.Add(1)
			s.ttl.clear(key)
			// Synthetic traditional-memory cleanup, per the paper's
			// observation that reclamation time "is spent almost
			// exclusively in Redis code, invoked via the callback, that
			// cleans up associated traditional memory".
			sink := int64(0)
			for i := 0; i < cfg.CleanupWork; i++ {
				sink += int64(i ^ len(key))
			}
			s.cleanupSink.Add(sink)
			if cfg.OnReclaim != nil {
				cfg.OnReclaim(key)
			}
		},
	})
	hashTable := sds.NewSoftHashTable[hashField](cfg.SMA, name+"-hashes", sds.HashTableConfig[hashField]{
		Policy:   cfg.Policy,
		Priority: cfg.Priority,
		KeyBytes: func(f hashField) int { return len(f.key) + len(f.field) + keyOverheadBytes },
		OnReclaim: func(f hashField, _ []byte) {
			s.reclaimed.Add(1)
			s.hashes.dropField(f)
		},
	})
	s.hashes = newHashStore(hashTable)
	listTable := sds.NewSoftHashTable[listElem](cfg.SMA, name+"-lists", sds.HashTableConfig[listElem]{
		Policy:   cfg.Policy,
		Priority: cfg.Priority,
		KeyBytes: seqKeyBytes,
		OnReclaim: func(e listElem, _ []byte) {
			s.reclaimed.Add(1)
			s.lists.dropElem(e)
		},
	})
	s.lists = newListStore(listTable)
	return s
}

// Set stores value under key, replacing any existing value. It returns
// core.ErrExhausted when soft memory cannot be obtained even after
// machine-wide reclamation.
func (s *Store) Set(key string, value []byte) error {
	s.sets.Add(1)
	return s.ht.Put(key, value)
}

// Get returns a copy of the value under key; ok is false on miss —
// including entries revoked under memory pressure.
func (s *Store) Get(key string) (value []byte, ok bool, err error) {
	s.expireIfDue(key)
	s.gets.Add(1)
	value, ok, err = s.ht.Get(key)
	if ok {
		s.hits.Add(1)
	} else {
		s.misses.Add(1)
	}
	return value, ok, err
}

// Del removes key, reporting whether it existed.
func (s *Store) Del(key string) (bool, error) {
	s.dels.Add(1)
	s.ttl.clear(key)
	return s.ht.Delete(key)
}

// Exists reports whether key is present.
func (s *Store) Exists(key string) bool {
	s.expireIfDue(key)
	return s.ht.Contains(key)
}

// Incr adjusts the integer stored at key by delta, creating it at delta
// if absent, and returns the new value. It fails if the current value is
// not an integer.
func (s *Store) Incr(key string, delta int64) (int64, error) {
	s.expireIfDue(key)
	s.gets.Add(1)
	cur, ok, err := s.ht.Get(key)
	if err != nil {
		return 0, err
	}
	n := int64(0)
	if ok {
		s.hits.Add(1)
		n, err = strconv.ParseInt(string(cur), 10, 64)
		if err != nil {
			return 0, fmt.Errorf("kvstore: value at %q is not an integer", key)
		}
	} else {
		s.misses.Add(1)
	}
	n += delta
	s.sets.Add(1)
	if err := s.ht.Put(key, []byte(strconv.FormatInt(n, 10))); err != nil {
		return 0, err
	}
	return n, nil
}

// Append appends data to the value at key (creating it if absent) and
// returns the new length.
func (s *Store) Append(key string, data []byte) (int, error) {
	s.expireIfDue(key)
	s.gets.Add(1)
	cur, ok, err := s.ht.Get(key)
	if err != nil {
		return 0, err
	}
	if ok {
		s.hits.Add(1)
	} else {
		s.misses.Add(1)
	}
	next := append(cur, data...)
	s.sets.Add(1)
	if err := s.ht.Put(key, next); err != nil {
		return 0, err
	}
	return len(next), nil
}

// StrLen returns the length of the value at key (0 if absent).
func (s *Store) StrLen(key string) int {
	s.expireIfDue(key)
	v, ok, err := s.ht.Get(key)
	if err != nil || !ok {
		return 0
	}
	return len(v)
}

// Keys returns the keys matching a glob pattern (path.Match syntax,
// which covers Redis's * and ? globs), sorted. An O(n) scan — use
// sparingly, like Redis KEYS.
func (s *Store) Keys(pattern string) ([]string, error) {
	if _, err := path.Match(pattern, ""); err != nil {
		return nil, fmt.Errorf("kvstore: bad pattern %q: %w", pattern, err)
	}
	var out []string
	if err := s.ht.Range(func(k string, _ []byte) bool {
		if ok, _ := path.Match(pattern, k); ok {
			out = append(out, k)
		}
		return true
	}); err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}

// Len returns the number of live entries.
func (s *Store) Len() int { return s.ht.Len() }

// FlushAll removes every entry.
func (s *Store) FlushAll() error {
	var keys []string
	if err := s.ht.Range(func(k string, _ []byte) bool {
		keys = append(keys, k)
		return true
	}); err != nil {
		return err
	}
	for _, k := range keys {
		if _, err := s.ht.Delete(k); err != nil {
			return err
		}
	}
	return nil
}

// Stats returns a snapshot of operation counters.
func (s *Store) Stats() Stats {
	return Stats{
		Sets:      s.sets.Load(),
		Gets:      s.gets.Load(),
		Hits:      s.hits.Load(),
		Misses:    s.misses.Load(),
		Dels:      s.dels.Load(),
		Reclaimed: s.reclaimed.Load(),
	}
}

// Context exposes the store's SDS context (for stats and priority).
func (s *Store) Context() *core.Context { return s.ht.Context() }

// Close frees the store's soft memory.
func (s *Store) Close() {
	s.ht.Close()
	s.hashes.ht.Close()
	s.lists.ht.Close()
}
