package kvstore

import (
	"bufio"
	"errors"
	"fmt"
	"log"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"softmem/internal/pages"
)

// connBufSize sizes each connection's read and write buffers. Large
// enough that a deep pipeline batch usually fits in one read and its
// replies coalesce into one write.
const connBufSize = 16 << 10

// Server exposes a Store over the RESP protocol. Mutations serialize
// inside the Store (the paper's Redis is single-threaded); the server
// accepts many connections.
type Server struct {
	store *Store
	logf  func(string, ...any)
	// met holds the per-command latency instruments once RegisterMetrics
	// has run; nil skips timing.
	met atomic.Pointer[cmdMetrics]
	// flushCoalesced counts replies whose flush was deferred because more
	// pipelined input was already buffered — each is a write syscall the
	// coalescing policy saved.
	flushCoalesced atomic.Int64

	mu    sync.Mutex
	ln    net.Listener
	conns map[net.Conn]struct{}
	done  bool
	wg    sync.WaitGroup
}

// NewServer wraps store; logf (nil = log.Printf) receives connection
// diagnostics.
func NewServer(store *Store, logf func(string, ...any)) *Server {
	if logf == nil {
		logf = log.Printf
	}
	return &Server{store: store, logf: logf, conns: make(map[net.Conn]struct{})}
}

// Listen binds network/addr and returns the bound address.
func (s *Server) Listen(network, addr string) (net.Addr, error) {
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, fmt.Errorf("kvstore: listen: %w", err)
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	return ln.Addr(), nil
}

// Serve accepts connections until Close.
func (s *Server) Serve() error {
	s.mu.Lock()
	ln := s.ln
	s.mu.Unlock()
	if ln == nil {
		return errors.New("kvstore: Serve before Listen")
	}
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			done := s.done
			s.mu.Unlock()
			if done {
				s.wg.Wait()
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.done {
			s.mu.Unlock()
			nc.Close()
			continue
		}
		s.conns[nc] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(nc)
			s.mu.Lock()
			delete(s.conns, nc)
			s.mu.Unlock()
		}()
	}
}

// Close stops the server and closes live connections.
func (s *Server) Close() {
	s.mu.Lock()
	s.done = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
}

// serveConn runs one connection's read-execute-reply loop. Flushes are
// coalesced: after a command, the reply buffer is only flushed when no
// further pipelined input is already buffered, so a burst of N
// pipelined commands costs one write syscall instead of N. Input still
// in the kernel socket buffer (not yet pulled into the bufio.Reader)
// does not defer a flush — the client is guaranteed a response batch no
// later than the moment the reader would block.
func (s *Server) serveConn(nc net.Conn) {
	defer nc.Close()
	cr := newCmdReader(bufio.NewReaderSize(nc, connBufSize))
	rw := newRespWriter(bufio.NewWriterSize(nc, connBufSize))
	for {
		args, err := cr.ReadCommand()
		if err != nil {
			return // EOF or protocol failure: drop the connection
		}
		if len(args) == 0 {
			continue
		}
		quit := s.execute(rw, args)
		if quit || cr.buffered() == 0 {
			if err := rw.flush(); err != nil {
				return
			}
			if quit {
				return
			}
		} else {
			s.flushCoalesced.Add(1)
		}
	}
}

// commandNames interns the canonical uppercase command names so dispatch
// can map a case-folded byte-slice command to one shared string without
// allocating (the m[string(b)] lookup compiles without a copy).
var commandNames = func() map[string]string {
	m := make(map[string]string, len(knownCommands))
	for c := range knownCommands {
		m[c] = c
	}
	return m
}()

// canonicalCommand resolves args[0] to its canonical uppercase name
// ("" when unknown) without mutating the argument or allocating.
func canonicalCommand(name []byte) string {
	var up [32]byte // longer than every known command
	if len(name) > len(up) {
		return ""
	}
	for i, c := range name {
		if 'a' <= c && c <= 'z' {
			c -= 'a' - 'A'
		}
		up[i] = c
	}
	return commandNames[string(up[:len(name)])]
}

// execute runs one command, writing its reply, and reports whether the
// connection should close. The argument slices are owned by the caller's
// cmdReader and are only valid for the duration of the call: values are
// copied into soft memory by the store, and keys are copied by their
// string conversion at each store call site.
func (s *Server) execute(rw *respWriter, args [][]byte) (quit bool) {
	cmd := canonicalCommand(args[0])
	m := s.met.Load()
	if m == nil {
		return s.dispatch(rw, cmd, args)
	}
	t0 := time.Now()
	quit = s.dispatch(rw, cmd, args)
	m.observe(cmd, time.Since(t0))
	return quit
}

func (s *Server) dispatch(rw *respWriter, cmd string, args [][]byte) (quit bool) {
	switch cmd {
	case "PING":
		rw.simple("PONG")
	case "QUIT":
		rw.simple("OK")
		return true
	case "SET":
		if len(args) != 3 {
			rw.error("wrong number of arguments for 'set'")
			return false
		}
		if err := s.store.Set(string(args[1]), args[2]); err != nil {
			rw.error("soft memory exhausted: " + err.Error())
			return false
		}
		rw.simple("OK")
	case "GET":
		if len(args) != 2 {
			rw.error("wrong number of arguments for 'get'")
			return false
		}
		v, ok, err := s.store.GetAppend(rw.val[:0], string(args[1]))
		rw.val = v[:0]
		switch {
		case err != nil:
			rw.error(err.Error())
		case !ok:
			rw.nilReply()
		default:
			rw.bulk(v)
		}
	case "MSET":
		if len(args) < 3 || len(args)%2 != 1 {
			rw.error("wrong number of arguments for 'mset'")
			return false
		}
		for i := 1; i < len(args); i += 2 {
			if err := s.store.Set(string(args[i]), args[i+1]); err != nil {
				rw.error("soft memory exhausted: " + err.Error())
				return false
			}
		}
		rw.simple("OK")
	case "MGET":
		if len(args) < 2 {
			rw.error("wrong number of arguments for 'mget'")
			return false
		}
		rw.arrayHeader(len(args) - 1)
		for _, k := range args[1:] {
			v, ok, err := s.store.GetAppend(rw.val[:0], string(k))
			rw.val = v[:0]
			if err != nil || !ok {
				rw.nilReply()
				continue
			}
			rw.bulk(v)
		}
	case "INCR", "DECR", "INCRBY", "DECRBY":
		delta := 1
		switch {
		case cmd == "INCR" || cmd == "DECR":
			if len(args) != 2 {
				rw.error("wrong number of arguments")
				return false
			}
		default:
			if len(args) != 3 {
				rw.error("wrong number of arguments")
				return false
			}
			n, ok := asciiInt(args[2])
			if !ok {
				rw.error("value is not an integer or out of range")
				return false
			}
			delta = n
		}
		if cmd == "DECR" || cmd == "DECRBY" {
			delta = -delta
		}
		n, err := s.store.Incr(string(args[1]), int64(delta))
		if err != nil {
			rw.error(err.Error())
			return false
		}
		rw.integer(n)
	case "APPEND":
		if len(args) != 3 {
			rw.error("wrong number of arguments for 'append'")
			return false
		}
		n, err := s.store.Append(string(args[1]), args[2])
		if err != nil {
			rw.error(err.Error())
			return false
		}
		rw.integer(int64(n))
	case "EXPIRE":
		if len(args) != 3 {
			rw.error("wrong number of arguments for 'expire'")
			return false
		}
		secs, ok := asciiInt(args[2])
		if !ok || secs < 0 {
			rw.error("invalid expire time")
			return false
		}
		if s.store.Expire(string(args[1]), time.Duration(secs)*time.Second) {
			rw.integer(1)
		} else {
			rw.integer(0)
		}
	case "TTL":
		if len(args) != 2 {
			rw.error("wrong number of arguments for 'ttl'")
			return false
		}
		d, exists, hasTTL := s.store.TTL(string(args[1]))
		switch {
		case !exists:
			rw.integer(-2)
		case !hasTTL:
			rw.integer(-1)
		default:
			// Round up, as Redis does: a fresh EXPIRE k 100 reports 100.
			rw.integer(int64((d + time.Second - 1) / time.Second))
		}
	case "PERSIST":
		if len(args) != 2 {
			rw.error("wrong number of arguments for 'persist'")
			return false
		}
		if s.store.Persist(string(args[1])) {
			rw.integer(1)
		} else {
			rw.integer(0)
		}
	case "STRLEN":
		if len(args) != 2 {
			rw.error("wrong number of arguments for 'strlen'")
			return false
		}
		rw.integer(int64(s.store.StrLen(string(args[1]))))
	case "LPUSH", "RPUSH":
		if len(args) < 3 {
			rw.error("wrong number of arguments")
			return false
		}
		var n int
		var err error
		if cmd == "LPUSH" {
			n, err = s.store.LPush(string(args[1]), args[2:]...)
		} else {
			n, err = s.store.RPush(string(args[1]), args[2:]...)
		}
		if err != nil {
			rw.error("soft memory exhausted: " + err.Error())
			return false
		}
		rw.integer(int64(n))
	case "LPOP", "RPOP":
		if len(args) != 2 {
			rw.error("wrong number of arguments")
			return false
		}
		var v []byte
		var ok bool
		var err error
		if cmd == "LPOP" {
			v, ok, err = s.store.LPop(string(args[1]))
		} else {
			v, ok, err = s.store.RPop(string(args[1]))
		}
		switch {
		case err != nil:
			rw.error(err.Error())
		case !ok:
			rw.nilReply()
		default:
			rw.bulk(v)
		}
	case "LLEN":
		if len(args) != 2 {
			rw.error("wrong number of arguments for 'llen'")
			return false
		}
		rw.integer(int64(s.store.LLen(string(args[1]))))
	case "LRANGE":
		if len(args) != 4 {
			rw.error("wrong number of arguments for 'lrange'")
			return false
		}
		start, ok1 := asciiInt(args[2])
		stop, ok2 := asciiInt(args[3])
		if !ok1 || !ok2 {
			rw.error("value is not an integer or out of range")
			return false
		}
		vals, err := s.store.LRange(string(args[1]), start, stop)
		if err != nil {
			rw.error(err.Error())
			return false
		}
		rw.arrayHeader(len(vals))
		for _, v := range vals {
			rw.bulk(v)
		}
	case "HSET":
		if len(args) != 4 {
			rw.error("wrong number of arguments for 'hset'")
			return false
		}
		created, err := s.store.HSet(string(args[1]), string(args[2]), args[3])
		if err != nil {
			rw.error("soft memory exhausted: " + err.Error())
			return false
		}
		if created {
			rw.integer(1)
		} else {
			rw.integer(0)
		}
	case "HGET":
		if len(args) != 3 {
			rw.error("wrong number of arguments for 'hget'")
			return false
		}
		v, ok, err := s.store.HGet(string(args[1]), string(args[2]))
		switch {
		case err != nil:
			rw.error(err.Error())
		case !ok:
			rw.nilReply()
		default:
			rw.bulk(v)
		}
	case "HDEL":
		if len(args) < 3 {
			rw.error("wrong number of arguments for 'hdel'")
			return false
		}
		fields := make([]string, 0, len(args)-2)
		for _, f := range args[2:] {
			fields = append(fields, string(f))
		}
		n, err := s.store.HDel(string(args[1]), fields...)
		if err != nil {
			rw.error(err.Error())
			return false
		}
		rw.integer(int64(n))
	case "HLEN":
		if len(args) != 2 {
			rw.error("wrong number of arguments for 'hlen'")
			return false
		}
		rw.integer(int64(s.store.HLen(string(args[1]))))
	case "HEXISTS":
		if len(args) != 3 {
			rw.error("wrong number of arguments for 'hexists'")
			return false
		}
		if s.store.HExists(string(args[1]), string(args[2])) {
			rw.integer(1)
		} else {
			rw.integer(0)
		}
	case "HGETALL":
		if len(args) != 2 {
			rw.error("wrong number of arguments for 'hgetall'")
			return false
		}
		all, err := s.store.HGetAll(string(args[1]))
		if err != nil {
			rw.error(err.Error())
			return false
		}
		fields := make([]string, 0, len(all))
		for f := range all {
			fields = append(fields, f)
		}
		sort.Strings(fields)
		rw.arrayHeader(2 * len(fields))
		for _, f := range fields {
			rw.bulkString(f)
			rw.bulk(all[f])
		}
	case "DEL":
		if len(args) < 2 {
			rw.error("wrong number of arguments for 'del'")
			return false
		}
		n := int64(0)
		for _, k := range args[1:] {
			removed, err := s.store.Del(string(k))
			if err != nil {
				rw.error(err.Error())
				return false
			}
			if removed {
				n++
			}
		}
		rw.integer(n)
	case "EXISTS":
		if len(args) != 2 {
			rw.error("wrong number of arguments for 'exists'")
			return false
		}
		if s.store.Exists(string(args[1])) {
			rw.integer(1)
		} else {
			rw.integer(0)
		}
	case "KEYS":
		if len(args) != 2 {
			rw.error("wrong number of arguments for 'keys'")
			return false
		}
		keys, err := s.store.Keys(string(args[1]))
		if err != nil {
			rw.error(err.Error())
			return false
		}
		rw.arrayHeader(len(keys))
		for _, k := range keys {
			rw.bulkString(k)
		}
	case "DBSIZE":
		rw.integer(int64(s.store.Len()))
	case "FLUSHALL":
		if err := s.store.FlushAll(); err != nil {
			rw.error(err.Error())
			return false
		}
		rw.simple("OK")
	case "INFO":
		st := s.store.Stats()
		hs := st.Soft
		// Totals are store-global aggregates over every shard; the
		// per-shard breakdown follows so operators can see skew.
		info := fmt.Sprintf(
			"entries:%d\r\nshards:%d\r\nsets:%d\r\ngets:%d\r\nhits:%d\r\nmisses:%d\r\nreclaimed:%d\r\nexpired:%d\r\nsoft_bytes:%d\r\nsoft_slot_bytes:%d\r\nsoft_pages:%d\r\nsoft_free_pages:%d\r\ntotal_allocs:%d\r\ntotal_frees:%d\r\nflush_coalesced:%d\r\n",
			st.Entries, st.Shards, st.Sets, st.Gets, st.Hits, st.Misses, st.Reclaimed, st.Expired,
			hs.LiveBytes, hs.SlotBytes, hs.PagesHeld, hs.FreePages, hs.TotalAllocs, hs.TotalFrees,
			s.flushCoalesced.Load())
		if st.Spill != nil {
			info += fmt.Sprintf(
				"promotions:%d\r\nspilled_entries:%d\r\nspilled_bytes:%d\r\nspill_demotions:%d\r\nspill_hits:%d\r\nspill_misses:%d\r\nspill_compactions:%d\r\n",
				st.Promotions, st.SpilledEntries, st.SpilledBytes,
				st.Spill.Demotions, st.Spill.Hits, st.Spill.Misses, st.Spill.Compactions)
		}
		for i, sh := range st.PerShard {
			info += fmt.Sprintf("shard%d_entries:%d\r\nshard%d_reclaimed:%d\r\nshard%d_soft_bytes:%d\r\n",
				i, sh.Entries, i, sh.Reclaimed, i, sh.Heap.LiveBytes)
		}
		rw.bulkString(info)
	default:
		rw.error(fmt.Sprintf("unknown command '%s'", args[0]))
	}
	return false
}

// PageSize re-exports the page size for INFO consumers.
const PageSize = pages.Size
