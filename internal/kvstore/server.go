package kvstore

import (
	"bufio"
	"errors"
	"fmt"
	"log"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"softmem/internal/pages"
)

// connBufSize sizes each connection's read and write buffers. Large
// enough that a deep pipeline batch usually fits in one read and its
// replies coalesce into one write.
const connBufSize = 16 << 10

// Server exposes a Store over the RESP protocol. Mutations serialize
// inside the Store (the paper's Redis is single-threaded); the server
// accepts many connections.
type Server struct {
	store *Store
	logf  func(string, ...any)
	// met holds the per-command latency instruments once RegisterMetrics
	// has run; nil skips timing.
	met atomic.Pointer[cmdMetrics]
	// flushCoalesced counts replies whose flush was deferred because more
	// pipelined input was already buffered — each is a write syscall the
	// coalescing policy saved.
	flushCoalesced atomic.Int64
	// cluster, when set, intercepts commands for the cluster layer
	// (MOVED redirects, replica applies) and observes local writes for
	// replication. Nil in single-node deployments.
	cluster atomic.Pointer[clusterHookBox]

	mu    sync.Mutex
	ln    net.Listener
	conns map[net.Conn]struct{}
	done  bool
	wg    sync.WaitGroup
}

// NewServer wraps store; logf (nil = log.Printf) receives connection
// diagnostics.
func NewServer(store *Store, logf func(string, ...any)) *Server {
	if logf == nil {
		logf = log.Printf
	}
	return &Server{store: store, logf: logf, conns: make(map[net.Conn]struct{})}
}

// Listen binds network/addr and returns the bound address.
func (s *Server) Listen(network, addr string) (net.Addr, error) {
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, fmt.Errorf("kvstore: listen: %w", err)
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	return ln.Addr(), nil
}

// Serve accepts connections until Close.
func (s *Server) Serve() error {
	s.mu.Lock()
	ln := s.ln
	s.mu.Unlock()
	if ln == nil {
		return errors.New("kvstore: Serve before Listen")
	}
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			done := s.done
			s.mu.Unlock()
			if done {
				s.wg.Wait()
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.done {
			s.mu.Unlock()
			nc.Close()
			continue
		}
		s.conns[nc] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(nc)
			s.mu.Lock()
			delete(s.conns, nc)
			s.mu.Unlock()
		}()
	}
}

// Close stops the server and closes live connections.
func (s *Server) Close() {
	s.mu.Lock()
	s.done = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
}

// serveConn runs one connection's read-route-reply loop. Keyed string
// commands are not executed inline: the reader parses RESP, routes each
// command by key hash into a per-connection Batch (multi-key MGET/MSET/
// DEL split per shard), and settles the batch — submit to the shard
// owner rings, wait, write the rejoined replies in command order — only
// when the pipeline runs dry or the batch fills. Non-keyed commands
// (PING, INFO, KEYS, hash/list ops, ...) settle first, then execute
// inline, so per-connection reply order is always the request order.
//
// Flushes stay coalesced exactly as before: the reply buffer goes out
// when no further pipelined input is already buffered, so a burst of N
// pipelined commands costs one batch settle and one write syscall.
func (s *Server) serveConn(nc net.Conn) {
	defer nc.Close()
	cr := newCmdReader(bufio.NewReaderSize(nc, connBufSize))
	rw := newRespWriter(bufio.NewWriterSize(nc, connBufSize))
	ce := &connExec{s: s, batch: s.store.NewBatch()}
	for {
		args, err := cr.ReadCommand()
		if err != nil {
			return // EOF or protocol failure: drop the connection
		}
		if len(args) == 0 {
			continue
		}
		quit := false
		cmd := canonicalCommand(args[0])
		if h := s.hook(); h != nil && h.Claim(cmd, args) {
			// Cluster-claimed command (redirect, replica apply, admin):
			// settle queued work first so per-connection reply order is
			// preserved, then let the hook write its reply. Session-aware
			// hooks get the connection's session (WAIT answers relative
			// to this connection's own writes).
			ce.settle(rw)
			if sh, ok := h.(SessionClusterHook); ok {
				sh.HandleSession(ce.session(h), cmd, args, rw)
			} else {
				h.Handle(cmd, args, rw)
			}
		} else if len(ce.specs) == 0 && cr.buffered() == 0 {
			// Serial client (no pipelined input, nothing queued): skip
			// the batch machinery and execute inline — the unpipelined
			// round trip stays identical to the pre-engine hot path.
			quit = s.executeConn(ce, rw, cmd, args)
		} else if !ce.enqueue(cmd, args) {
			ce.settle(rw)
			quit = s.executeConn(ce, rw, cmd, args)
		}
		if quit || cr.buffered() == 0 {
			ce.settle(rw)
			if err := rw.flush(); err != nil {
				return
			}
			if quit {
				return
			}
		} else {
			if ce.full() {
				ce.settle(rw)
			}
			s.flushCoalesced.Add(1)
		}
	}
}

// Batch-settle thresholds: a batch settles early once it holds this
// many commands or its value arena grows past this many bytes, bounding
// per-connection memory under an adversarially deep pipeline.
const (
	maxBatchCommands = 256
	maxBatchArena    = 1 << 20
)

// replySpec reply kinds: how one RESP command's reply is rebuilt from
// its slice of batch command slots.
const (
	rkStatus uint8 = iota // +OK unless the command failed (SET)
	rkBulk                // nil or bulk value (GET)
	rkInt                 // integer from N (INCR family, APPEND, STRLEN)
	rkBool                // :0/:1 from Ok (EXISTS, EXPIRE, PERSIST)
	rkTTL                 // Redis TTL semantics from Ok/N
	rkMGet                // array of bulks over the range (MGET)
	rkMSet                // +OK when every Set in the range succeeded
	rkDelSum              // sum of per-key removals (DEL)
	rkErr                 // pre-formed parse/arity error, no commands
)

// replySpec maps one pipelined RESP command onto the batch: the command
// slots [start, start+n) and the reply shape to rebuild from them.
type replySpec struct {
	kind   uint8
	cmd    string // canonical name, for per-command latency metrics
	errMsg string // rkErr only
	start  int32
	n      int32
}

// connExec is one connection's routing state: the reusable Batch, the
// reply specs rejoining batch results into RESP replies in request
// order, and the arena that copies SET values out of the cmdReader's
// reused argument buffers (a batch outlives the read of the next
// pipelined command, so values cannot alias the parser's scratch; keys
// are copied by their string conversion anyway). All three recycle
// their capacity across settles, so a steady pipelined workload
// allocates only the per-key string conversions.
type connExec struct {
	s     *Server
	batch *Batch
	specs []replySpec
	arena []byte
	// Session state for a SessionClusterHook, minted lazily and re-minted
	// if SetCluster swaps the hook mid-connection (sessHook is the raw
	// hook the session belongs to).
	sessHook ClusterHook
	sess     ClusterSession
}

// session returns the connection's session for h, minting it on first
// use (nil for hooks without session support, and on the nil receiver —
// direct execute calls carry no connection).
func (ce *connExec) session(h ClusterHook) ClusterSession {
	sh, ok := h.(SessionClusterHook)
	if !ok || ce == nil {
		return nil
	}
	if ce.sess == nil || ce.sessHook != h {
		ce.sess = sh.NewSession()
		ce.sessHook = h
	}
	return ce.sess
}

// copyVal copies a parser-owned value into the arena, returning a slice
// that stays valid until the next settle.
func (ce *connExec) copyVal(v []byte) []byte {
	off := len(ce.arena)
	ce.arena = append(ce.arena, v...)
	return ce.arena[off:len(ce.arena):len(ce.arena)]
}

func (ce *connExec) spec(kind uint8, cmd string, start, n int) bool {
	ce.specs = append(ce.specs, replySpec{kind: kind, cmd: cmd, start: int32(start), n: int32(n)})
	return true
}

func (ce *connExec) errSpec(cmd, msg string) bool {
	ce.specs = append(ce.specs, replySpec{kind: rkErr, cmd: cmd, errMsg: msg, start: int32(ce.batch.Len())})
	return true
}

// full reports whether the batch should settle before more input.
func (ce *connExec) full() bool {
	return ce.batch.Len() >= maxBatchCommands || len(ce.arena) >= maxBatchArena
}

// enqueue routes one parsed command into the batch, reporting false for
// commands that must run inline (non-keyed, list/hash, admin). Arity
// and argument errors are recorded as pre-formed error specs so they
// hold their place in the reply order without touching the engine.
func (ce *connExec) enqueue(cmd string, args [][]byte) bool {
	b := ce.batch
	switch cmd {
	case "SET":
		if len(args) != 3 {
			return ce.errSpec(cmd, "wrong number of arguments for 'set'")
		}
		i := b.Set(string(args[1]), ce.copyVal(args[2]))
		return ce.spec(rkStatus, cmd, i, 1)
	case "GET":
		if len(args) != 2 {
			return ce.errSpec(cmd, "wrong number of arguments for 'get'")
		}
		i := b.Get(string(args[1]))
		return ce.spec(rkBulk, cmd, i, 1)
	case "MSET":
		if len(args) < 3 || len(args)%2 != 1 {
			return ce.errSpec(cmd, "wrong number of arguments for 'mset'")
		}
		start := b.Len()
		for i := 1; i < len(args); i += 2 {
			b.Set(string(args[i]), ce.copyVal(args[i+1]))
		}
		return ce.spec(rkMSet, cmd, start, (len(args)-1)/2)
	case "MGET":
		if len(args) < 2 {
			return ce.errSpec(cmd, "wrong number of arguments for 'mget'")
		}
		start := b.Len()
		for _, k := range args[1:] {
			b.Get(string(k))
		}
		return ce.spec(rkMGet, cmd, start, len(args)-1)
	case "DEL":
		if len(args) < 2 {
			return ce.errSpec(cmd, "wrong number of arguments for 'del'")
		}
		start := b.Len()
		for _, k := range args[1:] {
			b.Del(string(k))
		}
		return ce.spec(rkDelSum, cmd, start, len(args)-1)
	case "INCR", "DECR", "INCRBY", "DECRBY":
		delta := 1
		switch {
		case cmd == "INCR" || cmd == "DECR":
			if len(args) != 2 {
				return ce.errSpec(cmd, "wrong number of arguments")
			}
		default:
			if len(args) != 3 {
				return ce.errSpec(cmd, "wrong number of arguments")
			}
			n, ok := asciiInt(args[2])
			if !ok {
				return ce.errSpec(cmd, "value is not an integer or out of range")
			}
			delta = n
		}
		if cmd == "DECR" || cmd == "DECRBY" {
			delta = -delta
		}
		i := b.Add(OpIncr, string(args[1]))
		b.Cmd(i).Delta = int64(delta)
		return ce.spec(rkInt, cmd, i, 1)
	case "APPEND":
		if len(args) != 3 {
			return ce.errSpec(cmd, "wrong number of arguments for 'append'")
		}
		i := b.Add(OpAppend, string(args[1]))
		b.Cmd(i).Arg = ce.copyVal(args[2])
		return ce.spec(rkInt, cmd, i, 1)
	case "STRLEN":
		if len(args) != 2 {
			return ce.errSpec(cmd, "wrong number of arguments for 'strlen'")
		}
		i := b.Add(OpStrLen, string(args[1]))
		return ce.spec(rkInt, cmd, i, 1)
	case "EXISTS":
		if len(args) != 2 {
			return ce.errSpec(cmd, "wrong number of arguments for 'exists'")
		}
		i := b.Add(OpExists, string(args[1]))
		return ce.spec(rkBool, cmd, i, 1)
	case "EXPIRE":
		if len(args) != 3 {
			return ce.errSpec(cmd, "wrong number of arguments for 'expire'")
		}
		secs, ok := asciiInt(args[2])
		if !ok || secs < 0 {
			return ce.errSpec(cmd, "invalid expire time")
		}
		i := b.Add(OpExpire, string(args[1]))
		b.Cmd(i).Delta = int64(secs) * int64(time.Second)
		return ce.spec(rkBool, cmd, i, 1)
	case "TTL":
		if len(args) != 2 {
			return ce.errSpec(cmd, "wrong number of arguments for 'ttl'")
		}
		i := b.Add(OpTTL, string(args[1]))
		return ce.spec(rkTTL, cmd, i, 1)
	case "PERSIST":
		if len(args) != 2 {
			return ce.errSpec(cmd, "wrong number of arguments for 'persist'")
		}
		i := b.Add(OpPersist, string(args[1]))
		return ce.spec(rkBool, cmd, i, 1)
	}
	return false
}

// settle executes the queued batch against the shard owners and writes
// the rejoined replies in request order, then resets for reuse.
func (ce *connExec) settle(rw *respWriter) {
	if len(ce.specs) == 0 {
		return
	}
	m := ce.s.met.Load()
	a := ce.s.store.attrib.Load()
	var t0 time.Time
	if m != nil || a != nil {
		t0 = time.Now()
	}
	_ = ce.batch.Exec()
	if h := ce.s.hook(); h != nil {
		onApplyBatch(h, ce.session(h), ce.batch.cmds)
	}
	if m != nil || a != nil {
		// The settle's wall time is shared evenly across its commands —
		// the per-command service time a pipelining client experiences.
		per := time.Since(t0) / time.Duration(len(ce.specs))
		for i := range ce.specs {
			if m != nil {
				m.observe(ce.specs[i].cmd, per)
			}
			if a != nil {
				ce.recordSlow(a, &ce.specs[i], int64(per))
			}
		}
	}
	for i := range ce.specs {
		ce.writeReply(rw, &ce.specs[i])
	}
	ce.specs = ce.specs[:0]
	ce.batch.Reset()
	ce.arena = ce.arena[:0]
}

// recordSlow feeds one settled RESP command into the slow-request log
// when it crossed the threshold. The breakdown is the slowest of the
// command's batch slots (an MGET's worst constituent — request latency
// tracks the slowest shard, the others overlap it). fallbackNs, the
// per-spec share of the settle's wall time, covers slots that executed
// outside the engine and carry no span (single-command batches run
// inline via Store.Do): those report exec-only.
func (ce *connExec) recordSlow(a *attribState, sp *replySpec, fallbackNs int64) {
	if sp.kind == rkErr {
		return
	}
	cmds := ce.batch.cmds
	var best *Command
	var bestTotal int64
	for i := sp.start; i < sp.start+sp.n; i++ {
		c := &cmds[i]
		t := int64(0)
		for p := 0; p < numCmdPhases; p++ {
			t += c.phaseNs[p]
		}
		if t > bestTotal {
			bestTotal, best = t, c
		}
	}
	if best == nil {
		if fallbackNs >= a.slow.thresholdNs {
			a.slow.record(SlowEntry{Cmd: sp.cmd, TotalNs: fallbackNs, ExecNs: fallbackNs})
		}
		return
	}
	if bestTotal < a.slow.thresholdNs {
		return
	}
	a.slow.record(SlowEntry{
		Cmd:            sp.cmd,
		Key:            best.Key,
		TotalNs:        bestTotal,
		QueueNs:        best.phaseNs[phaseQueue],
		LockWaitNs:     best.phaseNs[phaseLockWait],
		YieldStallNs:   best.phaseNs[phaseYieldStall],
		SpillPromoteNs: best.phaseNs[phaseSpillPromote],
		ExecNs:         best.phaseNs[phaseExec],
	})
}

// cmdError maps a command failure to its RESP reply: ErrOverloaded
// becomes -BUSY (shed load, retry), everything else the -ERR text the
// inline dispatch would have produced.
func cmdError(rw *respWriter, err error, isSet bool) {
	if err == ErrOverloaded {
		rw.busy()
		return
	}
	if isSet {
		rw.error("soft memory exhausted: " + err.Error())
		return
	}
	rw.error(err.Error())
}

// writeReply rebuilds one RESP command's reply from its batch slots.
func (ce *connExec) writeReply(rw *respWriter, sp *replySpec) {
	cmds := ce.batch.cmds
	switch sp.kind {
	case rkErr:
		rw.error(sp.errMsg)
	case rkStatus:
		if c := &cmds[sp.start]; c.Err != nil {
			cmdError(rw, c.Err, true)
		} else {
			rw.simple("OK")
		}
	case rkBulk:
		c := &cmds[sp.start]
		switch {
		case c.Err == ErrOverloaded:
			rw.busy()
		case c.Err != nil:
			rw.error(c.Err.Error())
		case !c.Ok:
			rw.nilReply()
		default:
			rw.bulk(c.Val)
		}
	case rkInt:
		if c := &cmds[sp.start]; c.Err != nil {
			cmdError(rw, c.Err, false)
		} else {
			rw.integer(c.N)
		}
	case rkBool:
		c := &cmds[sp.start]
		switch {
		case c.Err != nil:
			cmdError(rw, c.Err, false)
		case c.Ok:
			rw.integer(1)
		default:
			rw.integer(0)
		}
	case rkTTL:
		c := &cmds[sp.start]
		switch {
		case c.Err != nil:
			cmdError(rw, c.Err, false)
		case !c.Ok:
			rw.integer(-2)
		case c.N < 0:
			rw.integer(-1)
		default:
			// Round up, as Redis does: a fresh EXPIRE k 100 reports 100.
			rw.integer((c.N + int64(time.Second) - 1) / int64(time.Second))
		}
	case rkMGet:
		// A shed sub-command fails the whole MGET as -BUSY (an array
		// with silently-absent values would be indistinguishable from
		// misses); other per-key errors degrade to nil like the inline
		// path always did.
		for i := sp.start; i < sp.start+sp.n; i++ {
			if cmds[i].Err == ErrOverloaded {
				rw.busy()
				return
			}
		}
		rw.arrayHeader(int(sp.n))
		for i := sp.start; i < sp.start+sp.n; i++ {
			c := &cmds[i]
			if c.Err != nil || !c.Ok {
				rw.nilReply()
				continue
			}
			rw.bulk(c.Val)
		}
	case rkMSet:
		for i := sp.start; i < sp.start+sp.n; i++ {
			if cmds[i].Err != nil {
				cmdError(rw, cmds[i].Err, true)
				return
			}
		}
		rw.simple("OK")
	case rkDelSum:
		n := int64(0)
		for i := sp.start; i < sp.start+sp.n; i++ {
			c := &cmds[i]
			if c.Err != nil {
				cmdError(rw, c.Err, false)
				return
			}
			n += c.N
		}
		rw.integer(n)
	}
}

// commandNames interns the canonical uppercase command names so dispatch
// can map a case-folded byte-slice command to one shared string without
// allocating (the m[string(b)] lookup compiles without a copy).
var commandNames = func() map[string]string {
	m := make(map[string]string, len(knownCommands))
	for c := range knownCommands {
		m[c] = c
	}
	return m
}()

// canonicalCommand resolves args[0] to its canonical uppercase name
// ("" when unknown) without mutating the argument or allocating.
func canonicalCommand(name []byte) string {
	var up [32]byte // longer than every known command
	if len(name) > len(up) {
		return ""
	}
	for i, c := range name {
		if 'a' <= c && c <= 'z' {
			c -= 'a' - 'A'
		}
		up[i] = c
	}
	return commandNames[string(up[:len(name)])]
}

// execute runs one command, writing its reply, and reports whether the
// connection should close. The argument slices are owned by the caller's
// cmdReader and are only valid for the duration of the call: values are
// copied into soft memory by the store, and keys are copied by their
// string conversion at each store call site.
func (s *Server) execute(rw *respWriter, cmd string, args [][]byte) (quit bool) {
	return s.executeConn(nil, rw, cmd, args)
}

// executeConn is execute carrying the connection state (nil outside
// serveConn), so inline writes can feed a session-aware cluster hook.
func (s *Server) executeConn(ce *connExec, rw *respWriter, cmd string, args [][]byte) (quit bool) {
	m := s.met.Load()
	a := s.store.attrib.Load()
	if m == nil && a == nil {
		return s.dispatch(ce, rw, cmd, args)
	}
	t0 := time.Now()
	quit = s.dispatch(ce, rw, cmd, args)
	d := time.Since(t0)
	if m != nil {
		m.observe(cmd, d)
	}
	if a != nil {
		a.observeInline(cmd, args, d)
	}
	return quit
}

func (s *Server) dispatch(ce *connExec, rw *respWriter, cmd string, args [][]byte) (quit bool) {
	switch cmd {
	case "PING":
		rw.simple("PONG")
	case "QUIT":
		rw.simple("OK")
		return true
	case "SET":
		if len(args) != 3 {
			rw.error("wrong number of arguments for 'set'")
			return false
		}
		if err := s.store.Set(string(args[1]), args[2]); err != nil {
			rw.error("soft memory exhausted: " + err.Error())
			return false
		}
		if h := s.hook(); h != nil {
			applyHook(h, ce.session(h), OpSet, string(args[1]), args[2])
		}
		rw.simple("OK")
	case "GET":
		if len(args) != 2 {
			rw.error("wrong number of arguments for 'get'")
			return false
		}
		v, ok, err := s.store.GetAppend(rw.val[:0], string(args[1]))
		rw.val = v[:0]
		switch {
		case err != nil:
			rw.error(err.Error())
		case !ok:
			rw.nilReply()
		default:
			rw.bulk(v)
		}
	case "MSET":
		if len(args) < 3 || len(args)%2 != 1 {
			rw.error("wrong number of arguments for 'mset'")
			return false
		}
		h := s.hook()
		sess := ce.session(h)
		for i := 1; i < len(args); i += 2 {
			if err := s.store.Set(string(args[i]), args[i+1]); err != nil {
				rw.error("soft memory exhausted: " + err.Error())
				return false
			}
			if h != nil {
				applyHook(h, sess, OpSet, string(args[i]), args[i+1])
			}
		}
		rw.simple("OK")
	case "MGET":
		if len(args) < 2 {
			rw.error("wrong number of arguments for 'mget'")
			return false
		}
		rw.arrayHeader(len(args) - 1)
		for _, k := range args[1:] {
			v, ok, err := s.store.GetAppend(rw.val[:0], string(k))
			rw.val = v[:0]
			if err != nil || !ok {
				rw.nilReply()
				continue
			}
			rw.bulk(v)
		}
	case "INCR", "DECR", "INCRBY", "DECRBY":
		delta := 1
		switch {
		case cmd == "INCR" || cmd == "DECR":
			if len(args) != 2 {
				rw.error("wrong number of arguments")
				return false
			}
		default:
			if len(args) != 3 {
				rw.error("wrong number of arguments")
				return false
			}
			n, ok := asciiInt(args[2])
			if !ok {
				rw.error("value is not an integer or out of range")
				return false
			}
			delta = n
		}
		if cmd == "DECR" || cmd == "DECRBY" {
			delta = -delta
		}
		n, err := s.store.Incr(string(args[1]), int64(delta))
		if err != nil {
			rw.error(err.Error())
			return false
		}
		rw.integer(n)
	case "APPEND":
		if len(args) != 3 {
			rw.error("wrong number of arguments for 'append'")
			return false
		}
		n, err := s.store.Append(string(args[1]), args[2])
		if err != nil {
			rw.error(err.Error())
			return false
		}
		rw.integer(int64(n))
	case "EXPIRE":
		if len(args) != 3 {
			rw.error("wrong number of arguments for 'expire'")
			return false
		}
		secs, ok := asciiInt(args[2])
		if !ok || secs < 0 {
			rw.error("invalid expire time")
			return false
		}
		if s.store.Expire(string(args[1]), time.Duration(secs)*time.Second) {
			rw.integer(1)
		} else {
			rw.integer(0)
		}
	case "TTL":
		if len(args) != 2 {
			rw.error("wrong number of arguments for 'ttl'")
			return false
		}
		d, exists, hasTTL := s.store.TTL(string(args[1]))
		switch {
		case !exists:
			rw.integer(-2)
		case !hasTTL:
			rw.integer(-1)
		default:
			// Round up, as Redis does: a fresh EXPIRE k 100 reports 100.
			rw.integer(int64((d + time.Second - 1) / time.Second))
		}
	case "PERSIST":
		if len(args) != 2 {
			rw.error("wrong number of arguments for 'persist'")
			return false
		}
		if s.store.Persist(string(args[1])) {
			rw.integer(1)
		} else {
			rw.integer(0)
		}
	case "STRLEN":
		if len(args) != 2 {
			rw.error("wrong number of arguments for 'strlen'")
			return false
		}
		rw.integer(int64(s.store.StrLen(string(args[1]))))
	case "LPUSH", "RPUSH":
		if len(args) < 3 {
			rw.error("wrong number of arguments")
			return false
		}
		var n int
		var err error
		if cmd == "LPUSH" {
			n, err = s.store.LPush(string(args[1]), args[2:]...)
		} else {
			n, err = s.store.RPush(string(args[1]), args[2:]...)
		}
		if err != nil {
			rw.error("soft memory exhausted: " + err.Error())
			return false
		}
		rw.integer(int64(n))
	case "LPOP", "RPOP":
		if len(args) != 2 {
			rw.error("wrong number of arguments")
			return false
		}
		var v []byte
		var ok bool
		var err error
		if cmd == "LPOP" {
			v, ok, err = s.store.LPop(string(args[1]))
		} else {
			v, ok, err = s.store.RPop(string(args[1]))
		}
		switch {
		case err != nil:
			rw.error(err.Error())
		case !ok:
			rw.nilReply()
		default:
			rw.bulk(v)
		}
	case "LLEN":
		if len(args) != 2 {
			rw.error("wrong number of arguments for 'llen'")
			return false
		}
		rw.integer(int64(s.store.LLen(string(args[1]))))
	case "LRANGE":
		if len(args) != 4 {
			rw.error("wrong number of arguments for 'lrange'")
			return false
		}
		start, ok1 := asciiInt(args[2])
		stop, ok2 := asciiInt(args[3])
		if !ok1 || !ok2 {
			rw.error("value is not an integer or out of range")
			return false
		}
		vals, err := s.store.LRange(string(args[1]), start, stop)
		if err != nil {
			rw.error(err.Error())
			return false
		}
		rw.arrayHeader(len(vals))
		for _, v := range vals {
			rw.bulk(v)
		}
	case "HSET":
		if len(args) != 4 {
			rw.error("wrong number of arguments for 'hset'")
			return false
		}
		created, err := s.store.HSet(string(args[1]), string(args[2]), args[3])
		if err != nil {
			rw.error("soft memory exhausted: " + err.Error())
			return false
		}
		if created {
			rw.integer(1)
		} else {
			rw.integer(0)
		}
	case "HGET":
		if len(args) != 3 {
			rw.error("wrong number of arguments for 'hget'")
			return false
		}
		v, ok, err := s.store.HGet(string(args[1]), string(args[2]))
		switch {
		case err != nil:
			rw.error(err.Error())
		case !ok:
			rw.nilReply()
		default:
			rw.bulk(v)
		}
	case "HDEL":
		if len(args) < 3 {
			rw.error("wrong number of arguments for 'hdel'")
			return false
		}
		fields := make([]string, 0, len(args)-2)
		for _, f := range args[2:] {
			fields = append(fields, string(f))
		}
		n, err := s.store.HDel(string(args[1]), fields...)
		if err != nil {
			rw.error(err.Error())
			return false
		}
		rw.integer(int64(n))
	case "HLEN":
		if len(args) != 2 {
			rw.error("wrong number of arguments for 'hlen'")
			return false
		}
		rw.integer(int64(s.store.HLen(string(args[1]))))
	case "HEXISTS":
		if len(args) != 3 {
			rw.error("wrong number of arguments for 'hexists'")
			return false
		}
		if s.store.HExists(string(args[1]), string(args[2])) {
			rw.integer(1)
		} else {
			rw.integer(0)
		}
	case "HGETALL":
		if len(args) != 2 {
			rw.error("wrong number of arguments for 'hgetall'")
			return false
		}
		all, err := s.store.HGetAll(string(args[1]))
		if err != nil {
			rw.error(err.Error())
			return false
		}
		fields := make([]string, 0, len(all))
		for f := range all {
			fields = append(fields, f)
		}
		sort.Strings(fields)
		rw.arrayHeader(2 * len(fields))
		for _, f := range fields {
			rw.bulkString(f)
			rw.bulk(all[f])
		}
	case "DEL":
		if len(args) < 2 {
			rw.error("wrong number of arguments for 'del'")
			return false
		}
		n := int64(0)
		h := s.hook()
		sess := ce.session(h)
		for _, k := range args[1:] {
			removed, err := s.store.Del(string(k))
			if err != nil {
				rw.error(err.Error())
				return false
			}
			if removed {
				n++
			}
			if h != nil {
				applyHook(h, sess, OpDel, string(k), nil)
			}
		}
		rw.integer(n)
	case "EXISTS":
		if len(args) != 2 {
			rw.error("wrong number of arguments for 'exists'")
			return false
		}
		if s.store.Exists(string(args[1])) {
			rw.integer(1)
		} else {
			rw.integer(0)
		}
	case "KEYS":
		if len(args) != 2 {
			rw.error("wrong number of arguments for 'keys'")
			return false
		}
		keys, err := s.store.Keys(string(args[1]))
		if err != nil {
			rw.error(err.Error())
			return false
		}
		rw.arrayHeader(len(keys))
		for _, k := range keys {
			rw.bulkString(k)
		}
	case "DBSIZE":
		rw.integer(int64(s.store.Len()))
	case "FLUSHALL":
		if err := s.store.FlushAll(); err != nil {
			rw.error(err.Error())
			return false
		}
		rw.simple("OK")
	case "INFO":
		st := s.store.Stats()
		hs := st.Soft
		// Totals are store-global aggregates over every shard; the
		// per-shard breakdown follows so operators can see skew.
		info := fmt.Sprintf(
			"entries:%d\r\nshards:%d\r\nsets:%d\r\ngets:%d\r\nhits:%d\r\nmisses:%d\r\nreclaimed:%d\r\nexpired:%d\r\nsoft_bytes:%d\r\nsoft_slot_bytes:%d\r\nsoft_pages:%d\r\nsoft_free_pages:%d\r\ntotal_allocs:%d\r\ntotal_frees:%d\r\nflush_coalesced:%d\r\n",
			st.Entries, st.Shards, st.Sets, st.Gets, st.Hits, st.Misses, st.Reclaimed, st.Expired,
			hs.LiveBytes, hs.SlotBytes, hs.PagesHeld, hs.FreePages, hs.TotalAllocs, hs.TotalFrees,
			s.flushCoalesced.Load())
		if st.Spill != nil {
			info += fmt.Sprintf(
				"promotions:%d\r\nspilled_entries:%d\r\nspilled_bytes:%d\r\nspill_demotions:%d\r\nspill_hits:%d\r\nspill_misses:%d\r\nspill_compactions:%d\r\n",
				st.Promotions, st.SpilledEntries, st.SpilledBytes,
				st.Spill.Demotions, st.Spill.Hits, st.Spill.Misses, st.Spill.Compactions)
		}
		for i, sh := range st.PerShard {
			info += fmt.Sprintf("shard%d_entries:%d\r\nshard%d_reclaimed:%d\r\nshard%d_soft_bytes:%d\r\n",
				i, sh.Entries, i, sh.Reclaimed, i, sh.Heap.LiveBytes)
		}
		rw.bulkString(info)
	default:
		rw.error(fmt.Sprintf("unknown command '%s'", args[0]))
	}
	return false
}

// PageSize re-exports the page size for INFO consumers.
const PageSize = pages.Size
