package kvstore

import (
	"bufio"
	"errors"
	"fmt"
	"log"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"softmem/internal/pages"
)

// Server exposes a Store over the RESP protocol. Mutations serialize
// inside the Store (the paper's Redis is single-threaded); the server
// accepts many connections.
type Server struct {
	store *Store
	logf  func(string, ...any)
	// met holds the per-command latency instruments once RegisterMetrics
	// has run; nil skips timing.
	met atomic.Pointer[cmdMetrics]

	mu    sync.Mutex
	ln    net.Listener
	conns map[net.Conn]struct{}
	done  bool
	wg    sync.WaitGroup
}

// NewServer wraps store; logf (nil = log.Printf) receives connection
// diagnostics.
func NewServer(store *Store, logf func(string, ...any)) *Server {
	if logf == nil {
		logf = log.Printf
	}
	return &Server{store: store, logf: logf, conns: make(map[net.Conn]struct{})}
}

// Listen binds network/addr and returns the bound address.
func (s *Server) Listen(network, addr string) (net.Addr, error) {
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, fmt.Errorf("kvstore: listen: %w", err)
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	return ln.Addr(), nil
}

// Serve accepts connections until Close.
func (s *Server) Serve() error {
	s.mu.Lock()
	ln := s.ln
	s.mu.Unlock()
	if ln == nil {
		return errors.New("kvstore: Serve before Listen")
	}
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			done := s.done
			s.mu.Unlock()
			if done {
				s.wg.Wait()
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.done {
			s.mu.Unlock()
			nc.Close()
			continue
		}
		s.conns[nc] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(nc)
			s.mu.Lock()
			delete(s.conns, nc)
			s.mu.Unlock()
		}()
	}
}

// Close stops the server and closes live connections.
func (s *Server) Close() {
	s.mu.Lock()
	s.done = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
}

func (s *Server) serveConn(nc net.Conn) {
	defer nc.Close()
	r := bufio.NewReader(nc)
	w := bufio.NewWriter(nc)
	for {
		args, err := readCommand(r)
		if err != nil {
			return // EOF or protocol failure: drop the connection
		}
		if len(args) == 0 {
			continue
		}
		quit := s.execute(w, args)
		if err := w.Flush(); err != nil {
			return
		}
		if quit {
			return
		}
	}
}

// execute runs one command, writing its reply. It reports whether the
// connection should close.
func (s *Server) execute(w *bufio.Writer, args []string) (quit bool) {
	cmd := strings.ToUpper(args[0])
	if m := s.met.Load(); m != nil {
		t0 := time.Now()
		defer func() { m.observe(cmd, time.Since(t0)) }()
	}
	switch cmd {
	case "PING":
		writeSimple(w, "PONG")
	case "QUIT":
		writeSimple(w, "OK")
		return true
	case "SET":
		if len(args) != 3 {
			writeError(w, "wrong number of arguments for 'set'")
			return false
		}
		if err := s.store.Set(args[1], []byte(args[2])); err != nil {
			writeError(w, "soft memory exhausted: "+err.Error())
			return false
		}
		writeSimple(w, "OK")
	case "GET":
		if len(args) != 2 {
			writeError(w, "wrong number of arguments for 'get'")
			return false
		}
		v, ok, err := s.store.Get(args[1])
		switch {
		case err != nil:
			writeError(w, err.Error())
		case !ok:
			writeNil(w)
		default:
			writeBulk(w, v)
		}
	case "MSET":
		if len(args) < 3 || len(args)%2 != 1 {
			writeError(w, "wrong number of arguments for 'mset'")
			return false
		}
		for i := 1; i < len(args); i += 2 {
			if err := s.store.Set(args[i], []byte(args[i+1])); err != nil {
				writeError(w, "soft memory exhausted: "+err.Error())
				return false
			}
		}
		writeSimple(w, "OK")
	case "MGET":
		if len(args) < 2 {
			writeError(w, "wrong number of arguments for 'mget'")
			return false
		}
		writeArrayHeader(w, len(args)-1)
		for _, k := range args[1:] {
			v, ok, err := s.store.Get(k)
			if err != nil || !ok {
				writeNil(w)
				continue
			}
			writeBulk(w, v)
		}
	case "INCR", "DECR", "INCRBY", "DECRBY":
		delta := int64(1)
		switch {
		case cmd == "INCR" || cmd == "DECR":
			if len(args) != 2 {
				writeError(w, "wrong number of arguments")
				return false
			}
		default:
			if len(args) != 3 {
				writeError(w, "wrong number of arguments")
				return false
			}
			n, err := strconv.ParseInt(args[2], 10, 64)
			if err != nil {
				writeError(w, "value is not an integer or out of range")
				return false
			}
			delta = n
		}
		if cmd == "DECR" || cmd == "DECRBY" {
			delta = -delta
		}
		n, err := s.store.Incr(args[1], delta)
		if err != nil {
			writeError(w, err.Error())
			return false
		}
		writeInt(w, n)
	case "APPEND":
		if len(args) != 3 {
			writeError(w, "wrong number of arguments for 'append'")
			return false
		}
		n, err := s.store.Append(args[1], []byte(args[2]))
		if err != nil {
			writeError(w, err.Error())
			return false
		}
		writeInt(w, int64(n))
	case "EXPIRE":
		if len(args) != 3 {
			writeError(w, "wrong number of arguments for 'expire'")
			return false
		}
		secs, err := strconv.ParseInt(args[2], 10, 64)
		if err != nil || secs < 0 {
			writeError(w, "invalid expire time")
			return false
		}
		if s.store.Expire(args[1], time.Duration(secs)*time.Second) {
			writeInt(w, 1)
		} else {
			writeInt(w, 0)
		}
	case "TTL":
		if len(args) != 2 {
			writeError(w, "wrong number of arguments for 'ttl'")
			return false
		}
		d, exists, hasTTL := s.store.TTL(args[1])
		switch {
		case !exists:
			writeInt(w, -2)
		case !hasTTL:
			writeInt(w, -1)
		default:
			// Round up, as Redis does: a fresh EXPIRE k 100 reports 100.
			writeInt(w, int64((d+time.Second-1)/time.Second))
		}
	case "PERSIST":
		if len(args) != 2 {
			writeError(w, "wrong number of arguments for 'persist'")
			return false
		}
		if s.store.Persist(args[1]) {
			writeInt(w, 1)
		} else {
			writeInt(w, 0)
		}
	case "STRLEN":
		if len(args) != 2 {
			writeError(w, "wrong number of arguments for 'strlen'")
			return false
		}
		writeInt(w, int64(s.store.StrLen(args[1])))
	case "LPUSH", "RPUSH":
		if len(args) < 3 {
			writeError(w, "wrong number of arguments")
			return false
		}
		values := make([][]byte, 0, len(args)-2)
		for _, v := range args[2:] {
			values = append(values, []byte(v))
		}
		var n int
		var err error
		if cmd == "LPUSH" {
			n, err = s.store.LPush(args[1], values...)
		} else {
			n, err = s.store.RPush(args[1], values...)
		}
		if err != nil {
			writeError(w, "soft memory exhausted: "+err.Error())
			return false
		}
		writeInt(w, int64(n))
	case "LPOP", "RPOP":
		if len(args) != 2 {
			writeError(w, "wrong number of arguments")
			return false
		}
		var v []byte
		var ok bool
		var err error
		if cmd == "LPOP" {
			v, ok, err = s.store.LPop(args[1])
		} else {
			v, ok, err = s.store.RPop(args[1])
		}
		switch {
		case err != nil:
			writeError(w, err.Error())
		case !ok:
			writeNil(w)
		default:
			writeBulk(w, v)
		}
	case "LLEN":
		if len(args) != 2 {
			writeError(w, "wrong number of arguments for 'llen'")
			return false
		}
		writeInt(w, int64(s.store.LLen(args[1])))
	case "LRANGE":
		if len(args) != 4 {
			writeError(w, "wrong number of arguments for 'lrange'")
			return false
		}
		start, err1 := strconv.Atoi(args[2])
		stop, err2 := strconv.Atoi(args[3])
		if err1 != nil || err2 != nil {
			writeError(w, "value is not an integer or out of range")
			return false
		}
		vals, err := s.store.LRange(args[1], start, stop)
		if err != nil {
			writeError(w, err.Error())
			return false
		}
		writeArrayHeader(w, len(vals))
		for _, v := range vals {
			writeBulk(w, v)
		}
	case "HSET":
		if len(args) != 4 {
			writeError(w, "wrong number of arguments for 'hset'")
			return false
		}
		created, err := s.store.HSet(args[1], args[2], []byte(args[3]))
		if err != nil {
			writeError(w, "soft memory exhausted: "+err.Error())
			return false
		}
		if created {
			writeInt(w, 1)
		} else {
			writeInt(w, 0)
		}
	case "HGET":
		if len(args) != 3 {
			writeError(w, "wrong number of arguments for 'hget'")
			return false
		}
		v, ok, err := s.store.HGet(args[1], args[2])
		switch {
		case err != nil:
			writeError(w, err.Error())
		case !ok:
			writeNil(w)
		default:
			writeBulk(w, v)
		}
	case "HDEL":
		if len(args) < 3 {
			writeError(w, "wrong number of arguments for 'hdel'")
			return false
		}
		n, err := s.store.HDel(args[1], args[2:]...)
		if err != nil {
			writeError(w, err.Error())
			return false
		}
		writeInt(w, int64(n))
	case "HLEN":
		if len(args) != 2 {
			writeError(w, "wrong number of arguments for 'hlen'")
			return false
		}
		writeInt(w, int64(s.store.HLen(args[1])))
	case "HEXISTS":
		if len(args) != 3 {
			writeError(w, "wrong number of arguments for 'hexists'")
			return false
		}
		if s.store.HExists(args[1], args[2]) {
			writeInt(w, 1)
		} else {
			writeInt(w, 0)
		}
	case "HGETALL":
		if len(args) != 2 {
			writeError(w, "wrong number of arguments for 'hgetall'")
			return false
		}
		all, err := s.store.HGetAll(args[1])
		if err != nil {
			writeError(w, err.Error())
			return false
		}
		fields := make([]string, 0, len(all))
		for f := range all {
			fields = append(fields, f)
		}
		sort.Strings(fields)
		writeArrayHeader(w, 2*len(fields))
		for _, f := range fields {
			writeBulk(w, []byte(f))
			writeBulk(w, all[f])
		}
	case "DEL":
		if len(args) < 2 {
			writeError(w, "wrong number of arguments for 'del'")
			return false
		}
		n := int64(0)
		for _, k := range args[1:] {
			removed, err := s.store.Del(k)
			if err != nil {
				writeError(w, err.Error())
				return false
			}
			if removed {
				n++
			}
		}
		writeInt(w, n)
	case "EXISTS":
		if len(args) != 2 {
			writeError(w, "wrong number of arguments for 'exists'")
			return false
		}
		if s.store.Exists(args[1]) {
			writeInt(w, 1)
		} else {
			writeInt(w, 0)
		}
	case "KEYS":
		if len(args) != 2 {
			writeError(w, "wrong number of arguments for 'keys'")
			return false
		}
		keys, err := s.store.Keys(args[1])
		if err != nil {
			writeError(w, err.Error())
			return false
		}
		writeArrayHeader(w, len(keys))
		for _, k := range keys {
			writeBulk(w, []byte(k))
		}
	case "DBSIZE":
		writeInt(w, int64(s.store.Len()))
	case "FLUSHALL":
		if err := s.store.FlushAll(); err != nil {
			writeError(w, err.Error())
			return false
		}
		writeSimple(w, "OK")
	case "INFO":
		st := s.store.Stats()
		hs := st.Soft
		// Totals are store-global aggregates over every shard; the
		// per-shard breakdown follows so operators can see skew.
		info := fmt.Sprintf(
			"entries:%d\r\nshards:%d\r\nsets:%d\r\ngets:%d\r\nhits:%d\r\nmisses:%d\r\nreclaimed:%d\r\nexpired:%d\r\nsoft_bytes:%d\r\nsoft_slot_bytes:%d\r\nsoft_pages:%d\r\nsoft_free_pages:%d\r\ntotal_allocs:%d\r\ntotal_frees:%d\r\n",
			st.Entries, st.Shards, st.Sets, st.Gets, st.Hits, st.Misses, st.Reclaimed, st.Expired,
			hs.LiveBytes, hs.SlotBytes, hs.PagesHeld, hs.FreePages, hs.TotalAllocs, hs.TotalFrees)
		if st.Spill != nil {
			info += fmt.Sprintf(
				"promotions:%d\r\nspilled_entries:%d\r\nspilled_bytes:%d\r\nspill_demotions:%d\r\nspill_hits:%d\r\nspill_misses:%d\r\nspill_compactions:%d\r\n",
				st.Promotions, st.SpilledEntries, st.SpilledBytes,
				st.Spill.Demotions, st.Spill.Hits, st.Spill.Misses, st.Spill.Compactions)
		}
		for i, sh := range st.PerShard {
			info += fmt.Sprintf("shard%d_entries:%d\r\nshard%d_reclaimed:%d\r\nshard%d_soft_bytes:%d\r\n",
				i, sh.Entries, i, sh.Reclaimed, i, sh.Heap.LiveBytes)
		}
		writeBulk(w, []byte(info))
	default:
		writeError(w, fmt.Sprintf("unknown command '%s'", args[0]))
	}
	return false
}

// PageSize re-exports the page size for INFO consumers.
const PageSize = pages.Size
