package kvstore

import (
	"time"

	"softmem/internal/sds"
	"softmem/internal/spill"
)

// Option tunes a Store at construction, in the functional-options style
// of ipc.Dial: New(sma, WithShards(8), WithSpill(sp)). Each option maps
// onto one Config field; see Config for the full semantics.
type Option func(*Config)

// WithName labels the store's SDS contexts (default "kvstore").
func WithName(name string) Option { return func(c *Config) { c.Name = name } }

// WithPolicy selects the eviction order under reclamation (default
// EvictOldest).
func WithPolicy(p sds.EvictPolicy) Option { return func(c *Config) { c.Policy = p } }

// WithPriority sets the store's SDS reclamation priority (lower is
// reclaimed first).
func WithPriority(p int) Option { return func(c *Config) { c.Priority = p } }

// WithShards splits the string table into n shards (rounded up to a
// power of two), each with its own heap, TTL table, and owner
// goroutine. Default 1.
func WithShards(n int) Option { return func(c *Config) { c.Shards = n } }

// WithOnReclaim installs a callback run for every entry revoked under
// memory pressure, after the store's own cleanup.
func WithOnReclaim(fn func(key string)) Option { return func(c *Config) { c.OnReclaim = fn } }

// WithCleanupWork performs n iterations of synthetic traditional-memory
// cleanup per reclaimed entry (the paper's dominant reclamation cost).
func WithCleanupWork(n int) Option { return func(c *Config) { c.CleanupWork = n } }

// WithClock injects the TTL clock (default time.Now); experiments use
// virtual clocks.
func WithClock(now func() time.Time) Option { return func(c *Config) { c.Clock = now } }

// WithSpill attaches a spill tier: entries revoked under pressure
// demote to compressed disk records and promote back on GET misses.
func WithSpill(sp *spill.Store) Option { return func(c *Config) { c.Spill = sp } }

// WithOwnerQueue bounds each shard owner's command ring to n shard
// batches (default 256); a full ring sheds submissions with
// ErrOverloaded instead of blocking connection readers.
func WithOwnerQueue(n int) Option { return func(c *Config) { c.OwnerQueue = n } }

// WithLockFreeReads toggles the epoch-protected optimistic GET path on
// the string shards (default on; ignored under EvictLRU).
func WithLockFreeReads(on bool) Option {
	return func(c *Config) { c.DisableLockFreeReads = !on }
}

// WithSlowLog tunes the slow-request log kept once attribution is
// enabled via RegisterMetrics: commands slower than threshold land in a
// ring of size entries with their full phase breakdown (defaults 10ms,
// 128).
func WithSlowLog(threshold time.Duration, size int) Option {
	return func(c *Config) {
		c.SlowLogThreshold = threshold
		c.SlowLogSize = size
	}
}
