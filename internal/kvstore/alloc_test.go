//go:build !race

package kvstore

import (
	"bufio"
	"bytes"
	"io"
	"testing"

	"softmem/internal/core"
	"softmem/internal/pages"
)

// These tests pin the steady-state RESP parse and reply paths at zero
// heap allocations per operation — the tentpole property the hot-path
// rework exists to provide. They are excluded under -race because race
// instrumentation itself allocates.

func TestParseZeroAllocs(t *testing.T) {
	probe := ParseProbe()
	if n := testing.AllocsPerRun(200, probe); n != 0 {
		t.Fatalf("parse path allocates %.1f allocs/op, want 0", n)
	}
}

func TestReplyZeroAllocs(t *testing.T) {
	probe := ReplyProbe()
	if n := testing.AllocsPerRun(200, probe); n != 0 {
		t.Fatalf("reply path allocates %.1f allocs/op, want 0", n)
	}
}

// TestDispatchZeroAllocsGET pins the whole server-side GET hot path
// (parse + dispatch + reply) minus the store lookup's own allocations
// at the documented floor: the only allocation is the key's
// string(args[1]) conversion inside dispatch.
func TestDispatchZeroAllocsGET(t *testing.T) {
	st, _ := newStore(t, 0)
	if err := st.Set("bench-key", bytes.Repeat([]byte("v"), 64)); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(st, func(string, ...any) {})
	payload := appendCommand(nil, "GET", "bench-key")
	rd := bytes.NewReader(payload)
	cr := newCmdReader(bufio.NewReader(rd))
	rw := newRespWriter(bufio.NewWriterSize(io.Discard, 4096))
	n := testing.AllocsPerRun(200, func() {
		rd.Reset(payload)
		cr.lr.r.Reset(rd)
		args, err := cr.ReadCommand()
		if err != nil {
			panic(err)
		}
		srv.execute(rw, canonicalCommand(args[0]), args)
		if err := rw.flush(); err != nil {
			panic(err)
		}
	})
	// The value comes out of the store via GetAppend into the
	// connection's scratch, so the whole round trip's only allocation
	// is the key's string(args[1]) conversion.
	if n > 1 {
		t.Fatalf("GET round trip allocates %.1f allocs/op, want <= 1", n)
	}
}

// TestRoutedGetAllocs pins the shard-owner dispatch path: a reused
// Batch carrying two premade-key GETs through route, ring submit, owner
// execution, and rejoin. With the keys already strings and every piece
// of batch state recycled, the routed GET's floor is zero allocations;
// the acceptance bound is <= 1 per GET.
func TestRoutedGetAllocs(t *testing.T) {
	probe, cleanup := DispatchProbe()
	defer cleanup()
	n := testing.AllocsPerRun(200, probe) / 2 // the probe runs two GETs
	if n > 1 {
		t.Fatalf("routed GET allocates %.1f allocs/op, want <= 1", n)
	}
	if n != 0 {
		t.Logf("routed GET allocates %.1f allocs/op (floor is 0)", n)
	}
}

// TestOwnerNoMutexOnHotPath is the no-per-command-mutex evidence: a
// single-connection routed-GET run adds zero runtime mutex contention
// events, because owners retain their shard heap lock across batches
// (EngineStats' commands-per-acquisition shows the amortization), and
// submitters touch only the ring.
func TestOwnerNoMutexOnHotPath(t *testing.T) {
	probe, cleanup := DispatchProbe()
	defer cleanup()
	probe() // warm up: first batch takes the shard locks once
	if n := MutexContentionProbe(func() {
		for i := 0; i < 500; i++ {
			probe()
		}
	}); n != 0 {
		t.Fatalf("routed GETs caused %d mutex contention events, want 0", n)
	}
}

func BenchmarkParse(b *testing.B) {
	probe := ParseProbe()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		probe()
	}
}

func BenchmarkReply(b *testing.B) {
	probe := ReplyProbe()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		probe()
	}
}

func BenchmarkDispatchGET(b *testing.B) {
	sma := core.New(core.Config{Machine: pages.NewPool(0)})
	st := NewFromConfig(Config{SMA: sma})
	b.Cleanup(st.Close)
	if err := st.Set("bench-key", bytes.Repeat([]byte("v"), 256)); err != nil {
		b.Fatal(err)
	}
	srv := NewServer(st, func(string, ...any) {})
	payload := appendCommand(nil, "GET", "bench-key")
	rd := bytes.NewReader(payload)
	cr := newCmdReader(bufio.NewReader(rd))
	rw := newRespWriter(bufio.NewWriterSize(io.Discard, 4096))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Reset(payload)
		cr.lr.r.Reset(rd)
		args, err := cr.ReadCommand()
		if err != nil {
			b.Fatal(err)
		}
		srv.execute(rw, canonicalCommand(args[0]), args)
		if err := rw.flush(); err != nil {
			b.Fatal(err)
		}
	}
}
