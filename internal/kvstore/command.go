package kvstore

import (
	"errors"
	"fmt"
	"strconv"
	"sync/atomic"
	"time"

	"softmem/internal/core"
)

// Op names one store operation in the typed dispatch interface. The RESP
// server and the in-process facade both speak it: commands are routed by
// key hash to a shard owner and executed run-to-completion there.
type Op uint8

// Keyed operations.
const (
	// OpGet reads Key: Val (appended into the slot's scratch), Ok.
	OpGet Op = iota + 1
	// OpSet stores Arg under Key: Err on allocation failure.
	OpSet
	// OpDel removes Key: Ok reports existence, N is 1 when removed.
	OpDel
	// OpIncr adjusts the integer at Key by Delta: N is the new value.
	OpIncr
	// OpAppend appends Arg to Key's value: N is the new length.
	OpAppend
	// OpStrLen measures Key's value: N (0 when absent).
	OpStrLen
	// OpExists probes Key: Ok.
	OpExists
	// OpExpire sets Key's TTL to Delta nanoseconds: Ok when the key exists.
	OpExpire
	// OpTTL reads Key's TTL: Ok is existence, N the remaining nanoseconds
	// (-1 when the key has no deadline).
	OpTTL
	// OpPersist clears Key's TTL: Ok when a deadline was removed.
	OpPersist

	// opSweep (internal) collects every expired key of one pre-routed
	// shard: N is the number collected. Submitted by SweepExpired so TTL
	// expiry executes on the owner, never racing command execution.
	opSweep
)

// ErrOverloaded reports that a shard owner's command ring was full: the
// store sheds the command instead of blocking the submitter. The RESP
// server maps it to a -BUSY reply; clients should back off and retry.
var ErrOverloaded = errors.New("kvstore: shard owner ring full")

// Command is one typed request/response slot in a Batch.
//
// Aliasing and ownership: Key is retained only until the batch
// completes. Arg (the OpSet/OpAppend input) must stay unchanged until
// Exec returns — the store copies it into soft memory during execution,
// not at Add time. Val is a per-slot reusable scratch: the executed
// value is appended into its capacity, so the result aliases the slot
// and is valid only until the slot's next use (Batch.Add after a Reset).
// Callers needing longer-lived values must copy.
type Command struct {
	Op    Op
	Key   string
	Arg   []byte // input value for OpSet/OpAppend
	Delta int64  // OpIncr delta; OpExpire TTL in nanoseconds

	// Results, valid after Batch.Exec (or Store.Do) returns.
	Val []byte // OpGet value, appended into the slot scratch
	Ok  bool
	N   int64
	Err error

	shard int32 // routed shard index (pre-set for opSweep)

	// phaseNs is the command's latency-attribution span: nanoseconds per
	// phase (see span.go), filled by the engine only while attribution
	// is enabled. It lives in the slot — reused with the batch, zeroed
	// by Add — so spans cost no per-request allocation.
	phaseNs [numCmdPhases]int64
}

// Batch accumulates commands, splits them per shard, submits each
// shard's slice to its owner ring, and rejoins the results in order. A
// Batch is reusable (Reset) and free of steady-state allocations; it is
// not safe for concurrent use, but independent Batches are.
type Batch struct {
	s       *Store
	cmds    []Command
	groups  []shardBatch
	order   []int32 // shard indexes touched this Exec, in first-use order
	pending atomic.Int32
	done    chan struct{}
	// owners are this batch's caller-runs handles, one per shard: when a
	// shard's heap lock is free at Exec time, the submitting goroutine
	// takes it and executes that shard's group itself — same
	// run-to-completion discipline as the owner goroutine, zero handoffs.
	owners []*core.Owned
}

// shardBatch is the unit sent on a shard's ring: the indexes of the
// batch's commands owned by that shard, in batch order.
type shardBatch struct {
	b    *Batch
	idxs []int32
	// submitNs is the monotonic stamp of the ring submission (nowNanos),
	// consumed by the timed execution path as the group's queue wait; 0
	// on the caller-runs path, where there is no queueing.
	submitNs int64
}

// NewBatch returns an empty reusable batch bound to the store.
func (s *Store) NewBatch() *Batch {
	b := &Batch{
		s:      s,
		groups: make([]shardBatch, len(s.shards)),
		done:   make(chan struct{}, 1),
		owners: make([]*core.Owned, len(s.shards)),
	}
	for i := range b.groups {
		b.groups[i].b = b
		b.owners[i] = s.shards[i].ht.Context().Own()
	}
	return b
}

// Len reports how many commands are queued.
func (b *Batch) Len() int { return len(b.cmds) }

// Cmd returns the i'th command slot for argument setup or result
// reading. The pointer is invalidated by Reset, not by further Adds.
func (b *Batch) Cmd(i int) *Command { return &b.cmds[i] }

// Reset clears the batch for reuse, keeping every slot's scratch.
func (b *Batch) Reset() { b.cmds = b.cmds[:0] }

// Add queues op on key and returns the command's index; use Cmd to set
// inputs (Arg, Delta) and read results after Exec.
func (b *Batch) Add(op Op, key string) int {
	i := len(b.cmds)
	if i < cap(b.cmds) {
		b.cmds = b.cmds[:i+1]
	} else {
		b.cmds = append(b.cmds, Command{})
	}
	c := &b.cmds[i]
	val := c.Val[:0] // keep the slot's scratch across reuse
	*c = Command{Op: op, Key: key, Val: val, shard: int32(b.s.shardIdx(key))}
	return i
}

// Get queues a GET of key.
func (b *Batch) Get(key string) int { return b.Add(OpGet, key) }

// Set queues a SET of key to value (value must outlive Exec; see
// Command's aliasing rules).
func (b *Batch) Set(key string, value []byte) int {
	i := b.Add(OpSet, key)
	b.cmds[i].Arg = value
	return i
}

// Del queues a DEL of key.
func (b *Batch) Del(key string) int { return b.Add(OpDel, key) }

// addSweep queues an internal whole-shard TTL sweep.
func (b *Batch) addSweep(shard int) {
	i := b.Add(opSweep, "")
	b.cmds[i].shard = int32(shard)
}

// Exec routes the queued commands to their shard owners, waits for all
// of them, and leaves per-command results in the slots. Shards whose
// ring is full fail their commands with ErrOverloaded instead of
// blocking. Exec always returns nil; per-command outcomes (including
// ErrOverloaded) live in Command.Err. A single-command batch runs
// inline on the caller (one ring hop saved), which keeps unpipelined
// RESP latency identical to the direct path.
//
// Caller-runs: a shard group whose heap lock is free at Exec time is
// executed by the submitting goroutine itself, under the identical
// run-to-completion discipline the owner goroutine uses (TryLock, so
// the submitter never blocks). Only contended shards pay the ring
// handoff — which is exactly when the handoff buys parallelism. At most
// one caller-runs lock is held at a time, so cross-shard batches cannot
// form hold-and-wait cycles.
func (b *Batch) Exec() error {
	switch len(b.cmds) {
	case 0:
		return nil
	case 1:
		b.s.Do(&b.cmds[0])
		return nil
	}
	touched := b.order[:0]
	for i := range b.cmds {
		si := b.cmds[i].shard
		g := &b.groups[si]
		if len(g.idxs) == 0 {
			touched = append(touched, si)
		}
		g.idxs = append(g.idxs, int32(i))
	}
	b.order = touched
	b.pending.Store(int32(len(touched)))
	for _, si := range touched {
		g := &b.groups[si]
		sh := b.s.shards[si]
		if o := b.owners[si]; o.TryAcquire() {
			g.submitNs = 0
			start := time.Now()
			b.s.runShardBatch(o, sh, g)
			o.Release()
			sh.busyNs.Add(time.Since(start).Nanoseconds())
			continue
		}
		// Stamp the hand-off unconditionally: one monotonic clock read on
		// a path that already pays a channel send, and the timed executor
		// never sees a stale stamp from a previous Exec.
		g.submitNs = nowNanos()
		if err := b.s.submit(int(si), g); err != nil {
			for _, ci := range g.idxs {
				b.cmds[ci].Err = err
			}
			b.s.overloaded.Add(int64(len(g.idxs)))
			g.idxs = g.idxs[:0]
			if b.pending.Add(-1) == 0 {
				b.done <- struct{}{}
			}
		}
	}
	<-b.done
	return nil
}

// Do executes one command inline on the calling goroutine through the
// store's direct methods (which serialize against the shard owners via
// the heap locks). It is the single-command fast path Exec uses and the
// facade's one-shot entry point; results land in c and c.Err is
// returned.
func (s *Store) Do(c *Command) error {
	switch c.Op {
	case OpGet:
		c.Val, c.Ok, c.Err = s.GetAppend(c.Val[:0], c.Key)
	case OpSet:
		c.Err = s.Set(c.Key, c.Arg)
	case OpDel:
		c.Ok, c.Err = s.Del(c.Key)
		if c.Ok {
			c.N = 1
		}
	case OpIncr:
		c.N, c.Err = s.Incr(c.Key, c.Delta)
	case OpAppend:
		var n int
		n, c.Err = s.Append(c.Key, c.Arg)
		c.N = int64(n)
	case OpStrLen:
		c.N = int64(s.StrLen(c.Key))
	case OpExists:
		c.Ok = s.Exists(c.Key)
	case OpExpire:
		c.Ok = s.Expire(c.Key, time.Duration(c.Delta))
	case OpTTL:
		d, exists, hasTTL := s.TTL(c.Key)
		c.Ok = exists
		if hasTTL {
			c.N = int64(d)
		} else {
			c.N = -1
		}
	case OpPersist:
		c.Ok = s.Persist(c.Key)
	case opSweep:
		c.N = int64(s.sweepShardDirect(int(c.shard)))
	default:
		c.Err = errUnknownOp(c.Op)
	}
	return c.Err
}

func errUnknownOp(op Op) error {
	return errors.New("kvstore: unknown op " + strconv.Itoa(int(op)))
}

func errNotInteger(key string) error {
	return fmt.Errorf("kvstore: value at %q is not an integer", key)
}
