package kvstore

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"softmem/internal/core"
	"softmem/internal/pages"
)

// TestLockFreeGetProbeZeroLocks is the evidence test for the lock-free
// GET path: every probe GET must be a lock-free hit (hits == calls,
// fallbacks == 0), the run must add zero mutex contention events, and
// the steady-state dispatch must stay within one allocation per GET.
func TestLockFreeGetProbeZeroLocks(t *testing.T) {
	probe, stats, cleanup := LockFreeGetProbe()
	defer cleanup()

	// Warm the reusable state (first call grows the batch and scratch).
	probe()
	h0, _, f0, c0 := stats()

	const calls = 500
	events := MutexContentionProbe(func() {
		for i := 0; i < calls; i++ {
			probe()
		}
	})
	if events != 0 {
		t.Fatalf("lock-free GET path produced %d mutex contention events, want 0", events)
	}
	h1, _, f1, c1 := stats()
	if got := h1 - h0; got != calls {
		t.Fatalf("lock-free hits = %d of %d GETs; the optimistic path is not serving the probe", got, calls)
	}
	if f1 != f0 || c1 != c0 {
		t.Fatalf("probe GETs fell back to the locked path: fallbacks +%d condemned +%d", f1-f0, c1-c0)
	}

	if n := testing.AllocsPerRun(200, probe); n > 1 {
		t.Fatalf("lock-free GET allocates %.1f allocs/op, want <= 1", n)
	}
}

// TestLockFreeGetProbeLRUZeroLocks is the same evidence test on an
// EvictLRU store — the PR 10 bugfix: LRU tables were wholesale excluded
// from the optimistic path because a lock-free read could not update
// recency. With lazily-sampled per-entry clock stamps they serve the
// identical zero-lock GETs.
func TestLockFreeGetProbeLRUZeroLocks(t *testing.T) {
	probe, stats, cleanup := LockFreeGetProbeLRU()
	defer cleanup()

	probe() // warm the reusable state
	h0, _, f0, c0 := stats()

	const calls = 500
	events := MutexContentionProbe(func() {
		for i := 0; i < calls; i++ {
			probe()
		}
	})
	if events != 0 {
		t.Fatalf("LRU lock-free GET path produced %d mutex contention events, want 0", events)
	}
	h1, _, f1, c1 := stats()
	if got := h1 - h0; got != calls {
		t.Fatalf("lock-free hits = %d of %d GETs; the optimistic path is not serving LRU", got, calls)
	}
	if f1 != f0 || c1 != c0 {
		t.Fatalf("LRU probe GETs fell back to the locked path: fallbacks +%d condemned +%d", f1-f0, c1-c0)
	}
	if n := testing.AllocsPerRun(200, probe); n > 1 {
		t.Fatalf("LRU lock-free GET allocates %.1f allocs/op, want <= 1", n)
	}
}

// TestLockFreeStaleTTLMissStaysLockFree is the regression test for the
// expiry detour: a GET on a key with a due TTL deadline used to take the
// locked expireIfDue path even when the key was already gone from both
// tiers. With ContainsLockFree confirming absence first, the miss stays
// lock-free, counts in LockFreeMisses, and the stale deadline is
// dropped. Pre-fix, the lock-free miss counter stays flat here.
func TestLockFreeStaleTTLMissStaysLockFree(t *testing.T) {
	now := time.Now()
	clock := func() time.Time { return now }
	sma := core.New(core.Config{Machine: pages.NewPool(0)})
	st := New(sma, WithName("lf-stale-ttl"), WithClock(clock))
	defer st.Close()

	if err := st.Set("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if !st.Expire("k", time.Second) {
		t.Fatal("Expire refused")
	}
	// FlushAll deletes the entry but leaves the deadline behind — the
	// one path that strands a TTL on an absent key.
	if err := st.FlushAll(); err != nil {
		t.Fatal(err)
	}
	now = now.Add(2 * time.Second)

	_, m0, _, _ := st.lockFreeTotals()
	if _, ok, err := st.Get("k"); err != nil || ok {
		t.Fatalf("Get(stale) = %v, %v, want clean miss", ok, err)
	}
	_, m1, _, _ := st.lockFreeTotals()
	if m1 != m0+1 {
		t.Fatalf("LockFreeMisses %d -> %d; confirmed-absent miss took the locked path", m0, m1)
	}
	if st.Expired() != 0 {
		t.Fatalf("phantom expiry counted: %d", st.Expired())
	}
	// The stale deadline must be gone: the next GET goes straight down
	// the not-due optimistic path (another lock-free miss).
	if sh := st.shard("k"); sh.ttl.due("k") {
		t.Fatal("stale deadline survived the lock-free miss")
	}
	if _, ok, _ := st.Get("k"); ok {
		t.Fatal("absent key hit")
	}
	if _, m2, _, _ := st.lockFreeTotals(); m2 != m1+1 {
		t.Fatalf("follow-up miss not lock-free: %d -> %d", m1, m2)
	}
}

// TestLockFreeGetValues pins correctness of the optimistic store paths
// against the locked implementation: hits, misses, replacement,
// deletion, Exists, and stats accounting.
func TestLockFreeGetValues(t *testing.T) {
	sma := core.New(core.Config{Machine: pages.NewPool(0)})
	st := New(sma, WithName("lf-values"), WithShards(4))
	defer st.Close()

	for i := 0; i < 200; i++ {
		if err := st.Set(fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		v, ok, err := st.Get(fmt.Sprintf("k%d", i))
		if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get(k%d) = %q, %v, %v", i, v, ok, err)
		}
	}
	if _, ok, _ := st.Get("absent"); ok {
		t.Fatal("absent key hit")
	}
	if !st.Exists("k3") || st.Exists("nope") {
		t.Fatal("Exists wrong through the lock-free path")
	}
	if err := st.Set("k3", []byte("replaced")); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := st.Get("k3"); !ok || string(v) != "replaced" {
		t.Fatalf("replaced value = %q, %v", v, ok)
	}
	if _, err := st.Del("k3"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := st.Get("k3"); ok {
		t.Fatal("deleted key still visible")
	}

	stats := st.Stats()
	if stats.LockFreeHits == 0 || stats.LockFreeMisses == 0 {
		t.Fatalf("lock-free counters flat: %+v", stats)
	}
	if stats.Gets != stats.Hits+stats.Misses {
		t.Fatalf("get accounting broken: gets=%d hits=%d misses=%d", stats.Gets, stats.Hits, stats.Misses)
	}
}

// TestLockFreeDisabledOption pins the A/B switch: WithLockFreeReads(false)
// keeps every shard on the locked path.
func TestLockFreeDisabledOption(t *testing.T) {
	sma := core.New(core.Config{Machine: pages.NewPool(0)})
	st := New(sma, WithName("lf-off"), WithLockFreeReads(false))
	defer st.Close()
	if err := st.Set("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := st.Get("k"); err != nil || !ok || string(v) != "v" {
		t.Fatalf("Get = %q, %v, %v", v, ok, err)
	}
	if h, m, f, c := st.lockFreeTotals(); h != 0 || m != 0 || f != 0 || c != 0 {
		t.Fatalf("disabled store used the optimistic path: %d %d %d %d", h, m, f, c)
	}
}

// TestLockFreeTTLExpiry pins that the optimistic fast path cannot serve
// a value past its TTL deadline: once due, the read detours through the
// locked expiry path.
func TestLockFreeTTLExpiry(t *testing.T) {
	now := time.Now()
	clock := func() time.Time { return now }
	sma := core.New(core.Config{Machine: pages.NewPool(0)})
	st := New(sma, WithName("lf-ttl"), WithClock(clock))
	defer st.Close()

	if err := st.Set("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	st.Expire("k", time.Second)
	if _, ok, _ := st.Get("k"); !ok {
		t.Fatal("key missing before deadline")
	}
	now = now.Add(2 * time.Second)
	if _, ok, _ := st.Get("k"); ok {
		t.Fatal("lock-free path served an expired key")
	}
	if st.Expired() != 1 {
		t.Fatalf("expired count = %d", st.Expired())
	}
}

// TestEpochReclaimRace is the store-level chaos invariant for the
// tentpole: concurrent lock-free GETs and KEYS scans race writers and a
// constant stream of reclamation demands on a small machine. Revocation
// condemns entries and epoch-retires their pages; no read may ever
// observe a torn value, and the heap must stay consistent.
func TestEpochReclaimRace(t *testing.T) {
	sma := core.New(core.Config{Machine: pages.NewPool(48), HeapFreeMax: 0})
	st := New(sma, WithName("epoch-race"), WithShards(2))
	defer st.Close()

	val := func(i int) []byte {
		return bytes.Repeat([]byte(fmt.Sprintf("e%03d|", i%1000)), 100) // 500 bytes, self-describing
	}
	const keys = 64
	for i := 0; i < keys; i++ {
		_ = st.Set(fmt.Sprintf("k%d", i), val(i))
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	var lockFreeHits atomic.Int64

	// Lock-free readers.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			var dst []byte
			for i := 0; !stop.Load(); i++ {
				k := (i*13 + seed*7) % keys
				v, ok, err := st.GetAppend(dst[:0], fmt.Sprintf("k%d", k))
				if err != nil {
					continue
				}
				if ok && !bytes.Equal(v, val(k)) {
					t.Errorf("torn read for k%d: %d bytes", k, len(v))
					return
				}
				dst = v
			}
		}(r)
	}
	// Scanner: KEYS through ScanLockFree while the index churns.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			if _, err := st.Keys("k*"); err != nil {
				t.Errorf("keys: %v", err)
				return
			}
		}
	}()
	// Writer refilling what reclamation revokes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			k := i % keys
			_ = st.Set(fmt.Sprintf("k%d", k), val(k))
		}
	}()

	deadline := time.Now().Add(10 * time.Second)
	for i := 0; i < 500 || (lockFreeHits.Load() == 0 && time.Now().Before(deadline)); i++ {
		sma.HandleDemand(2)
		h, _, _, _ := st.lockFreeTotals()
		lockFreeHits.Store(h)
	}
	stop.Store(true)
	wg.Wait()

	if lockFreeHits.Load() == 0 {
		t.Fatal("race exercised zero lock-free hits")
	}
	if err := sma.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkLockFreeGet times the epoch-protected optimistic GET through
// the full single-command dispatch path. ReportAllocs pins the ≤1
// alloc/op budget the overhead guard enforces.
func BenchmarkLockFreeGet(b *testing.B) {
	probe, _, cleanup := LockFreeGetProbe()
	b.Cleanup(cleanup)
	probe() // warm the reusable batch and scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		probe()
	}
}

// BenchmarkMixedReadReclaim times lock-free GETs while a reclamation
// demand stream and a refilling writer run against the same store — the
// contended read/reclaim interaction the epoch design exists for.
func BenchmarkMixedReadReclaim(b *testing.B) {
	sma := core.New(core.Config{Machine: pages.NewPool(0)})
	st := New(sma, WithName("mixed-bench"))
	b.Cleanup(st.Close)

	const keyN = 512
	names := make([]string, keyN)
	val := bytes.Repeat([]byte("v"), 256)
	for i := range names {
		names[i] = fmt.Sprintf("mixed:%05d", i)
		if err := st.Set(names[i], val); err != nil {
			b.Fatal(err)
		}
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // demand stream: condemn + epoch-retire entries
		defer wg.Done()
		for !stop.Load() {
			sma.HandleDemand(2)
		}
	}()
	go func() { // writer refilling what the demands take
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			_ = st.Set(names[i%keyN], val)
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	batch := st.NewBatch()
	for i := 0; i < b.N; i++ {
		batch.Get(names[i%keyN])
		if err := batch.Exec(); err != nil {
			b.Fatal(err)
		}
		batch.Reset()
	}
	b.StopTimer()
	stop.Store(true)
	wg.Wait()
}
