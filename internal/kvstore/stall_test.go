package kvstore

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestStallNanosCountsSpillPromotions: a GET that faults a demoted
// value back from the spill tier must charge its promotion window to
// Store.StallNanos — the spill_promote half of the QoS stall signal.
// The store clock is injected so the charge is deterministic.
func TestStallNanosCountsSpillPromotions(t *testing.T) {
	var now time.Time
	var mu sync.Mutex
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		now = now.Add(time.Millisecond)
		return now
	}
	var demoted []string
	st, sma, _ := newSpillStore(t, Config{
		Clock:     clock,
		OnReclaim: func(k string) { demoted = append(demoted, k) },
	})

	for i := 0; i < 64; i++ {
		if err := st.Set(fmt.Sprintf("k%03d", i), make([]byte, 900)); err != nil {
			t.Fatal(err)
		}
	}
	if released := sma.HandleDemand(8); released == 0 {
		t.Fatal("demand released nothing")
	}
	if len(demoted) == 0 {
		t.Fatal("no keys were demoted")
	}

	before := st.StallNanos()
	if _, ok, err := st.Get(demoted[0]); err != nil || !ok {
		t.Fatalf("Get(%s) = %v, %v", demoted[0], ok, err)
	}
	if got := st.StallNanos(); got <= before {
		t.Fatalf("StallNanos = %d after promotion, want > %d", got, before)
	}
}

// TestStallNanosZeroWithoutPressure: an unpressured store reports no
// stall — the signal must not invent pressure where none exists.
func TestStallNanosZeroWithoutPressure(t *testing.T) {
	st, _ := newStore(t, 0)
	for i := 0; i < 32; i++ {
		if err := st.Set(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
		if _, _, err := st.Get(fmt.Sprintf("k%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := st.StallNanos(); got != 0 {
		t.Fatalf("StallNanos = %d on an unpressured store, want 0", got)
	}
}
