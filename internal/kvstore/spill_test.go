package kvstore

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"softmem/internal/core"
	"softmem/internal/pages"
	"softmem/internal/spill"
)

func newSpillStore(t *testing.T, cfg Config) (*Store, *core.SMA, *spill.Store) {
	t.Helper()
	sp, err := spill.Open(spill.Config{Dir: t.TempDir(), CompactInterval: -1})
	if err != nil {
		t.Fatalf("spill.Open: %v", err)
	}
	t.Cleanup(sp.Close)
	sma := core.New(core.Config{Machine: pages.NewPool(0)})
	sma.SetSpillReporter(sp.BytesOnDisk)
	cfg.SMA = sma
	cfg.Spill = sp
	st := NewFromConfig(cfg)
	t.Cleanup(st.Close)
	return st, sma, sp
}

// TestSpillDemotionRecovery is the spill tier's end-to-end acceptance
// test: fill the store, reclaim deterministically via HandleDemand so a
// known set of keys is demoted, then GET every key and require >= 90%
// of the demoted ones back via transparent promotion.
func TestSpillDemotionRecovery(t *testing.T) {
	var demoted []string
	st, sma, sp := newSpillStore(t, Config{OnReclaim: func(k string) { demoted = append(demoted, k) }})

	const keys = 64
	val := func(i int) []byte { return []byte(fmt.Sprintf("value-%03d-%s", i, string(make([]byte, 900)))) }
	for i := 0; i < keys; i++ {
		if err := st.Set(fmt.Sprintf("k%03d", i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if released := sma.HandleDemand(8); released == 0 {
		t.Fatal("demand released nothing")
	}
	if len(demoted) == 0 {
		t.Fatal("no keys were reclaimed")
	}
	if sp.Stats().Demotions < int64(len(demoted)) {
		t.Fatalf("demotions %d < reclaimed %d", sp.Stats().Demotions, len(demoted))
	}

	recovered := 0
	for _, k := range demoted {
		var i int
		fmt.Sscanf(k, "k%03d", &i)
		v, ok, err := st.Get(k)
		if err != nil {
			t.Fatalf("Get %s: %v", k, err)
		}
		if ok && string(v) == string(val(i)) {
			recovered++
		}
	}
	if recovered < (len(demoted)*9+9)/10 {
		t.Fatalf("recovered %d of %d demoted keys, want >= 90%%", recovered, len(demoted))
	}
	stats := st.Stats()
	if stats.Promotions < int64(recovered) {
		t.Fatalf("Promotions = %d, recovered %d", stats.Promotions, recovered)
	}
	// Promoted values are hot again: a second read hits without touching
	// the spill tier further.
	before := sp.Stats().Promotions
	for _, k := range demoted {
		st.Get(k)
	}
	if got := sp.Stats().Promotions; got != before {
		t.Fatalf("second reads promoted again (%d -> %d)", before, got)
	}
	// Undemoted keys never left the hot tier.
	seen := map[string]bool{}
	for _, k := range demoted {
		seen[k] = true
	}
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("k%03d", i)
		if seen[k] {
			continue
		}
		if v, ok, _ := st.Get(k); !ok || string(v) != string(val(i)) {
			t.Fatalf("untouched key %s lost", k)
		}
	}
}

// TestSpillDisabledDropSemantics pins the default behavior: without a
// spill store, reclaimed entries are dropped exactly as before — every
// demoted key misses and nothing is written anywhere.
func TestSpillDisabledDropSemantics(t *testing.T) {
	var reclaimed []string
	sma := core.New(core.Config{Machine: pages.NewPool(0)})
	st := NewFromConfig(Config{SMA: sma, OnReclaim: func(k string) { reclaimed = append(reclaimed, k) }})
	defer st.Close()

	val := make([]byte, 1024)
	for i := 0; i < 32; i++ {
		if err := st.Set(fmt.Sprintf("k%03d", i), val); err != nil {
			t.Fatal(err)
		}
	}
	if released := sma.HandleDemand(4); released == 0 {
		t.Fatal("demand released nothing")
	}
	if len(reclaimed) == 0 {
		t.Fatal("no keys reclaimed")
	}
	for _, k := range reclaimed {
		if _, ok, _ := st.Get(k); ok {
			t.Fatalf("reclaimed key %s found with spill disabled", k)
		}
		if st.Exists(k) {
			t.Fatalf("reclaimed key %s Exists with spill disabled", k)
		}
	}
	stats := st.Stats()
	if stats.Promotions != 0 || stats.SpilledEntries != 0 || stats.Spill != nil {
		t.Fatalf("spill stats leaked into disabled store: %+v", stats)
	}
}

// TestSpillWriteInvalidatesDemoted: a fresh SET and a DEL must both
// supersede a demoted copy.
func TestSpillWriteInvalidatesDemoted(t *testing.T) {
	st, _, sp := newSpillStore(t, Config{})
	if err := st.Set("k", []byte("old")); err != nil {
		t.Fatal(err)
	}
	// Demote directly through the sink namespace the store uses.
	if err := st.Set("other", make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	sink := sp.Sink("kvstore")
	sink.OnReclaim("k", []byte("old")) // as if reclaimed
	if _, err := st.table("k").Delete("k"); err != nil {
		t.Fatal(err)
	}

	// Overwrite: GET must see the new value, not the spilled one.
	if err := st.Set("k", []byte("new")); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := st.Get("k"); !ok || string(v) != "new" {
		t.Fatalf("Get after overwrite = %q, %v", v, ok)
	}

	// Delete: GET must miss even though a record was once spilled.
	sink.OnReclaim("k", []byte("stale"))
	if existed, _ := st.Del("k"); !existed {
		t.Fatal("Del reported missing")
	}
	if _, ok, _ := st.Get("k"); ok {
		t.Fatal("deleted key resurrected from spill")
	}
	if st.Exists("k") {
		t.Fatal("deleted key Exists via spill")
	}
}

// TestSpillPromotionDeleteRollback walks the promotion/deletion
// interleaving deterministically: a Del that lands while the value is
// in flight between tiers (removed from spill, not yet re-inserted)
// must flag the promotion so its re-insert is rolled back — otherwise
// the deleted key resurrects in the hot tier.
func TestSpillPromotionDeleteRollback(t *testing.T) {
	st, _, sp := newSpillStore(t, Config{})
	sink := sp.Sink("kvstore")
	sink.OnReclaim("k", []byte("v")) // value lives only on disk

	p := st.promoBegin("k")
	sv, ok := st.spill.Promote("k")
	if !ok {
		t.Fatal("Promote missed a spilled key")
	}
	// The concurrent Del: the key is in neither tier right now.
	if _, err := st.Del("k"); err != nil {
		t.Fatal(err)
	}
	if err := st.table("k").Put("k", sv); err != nil {
		t.Fatal(err)
	}
	if !st.promoEnd("k", p) {
		t.Fatal("Del during in-flight promotion was not flagged")
	}
	// lookup's rollback path:
	if _, err := st.table("k").Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := st.Get("k"); ok {
		t.Fatal("deleted key resurrected by promotion re-insert")
	}

	// A Set that re-creates the key after the racing Del cancels the
	// rollback: the newest write wins, not the stale deletion.
	sink.OnReclaim("k2", []byte("v2"))
	p2 := st.promoBegin("k2")
	if _, ok := st.spill.Promote("k2"); !ok {
		t.Fatal("Promote missed k2")
	}
	if _, err := st.Del("k2"); err != nil {
		t.Fatal(err)
	}
	if err := st.Set("k2", []byte("recreated")); err != nil {
		t.Fatal(err)
	}
	if st.promoEnd("k2", p2) {
		t.Fatal("Set after Del should cancel the promotion rollback")
	}
	if v, ok, _ := st.Get("k2"); !ok || string(v) != "recreated" {
		t.Fatalf("re-created key lost: %q, %v", v, ok)
	}
}

// TestSpillPromotionDeleteRace hammers concurrent GET/DEL over keys
// that live only in the spill tier; whatever the interleaving, a key
// must never survive its deletion.
func TestSpillPromotionDeleteRace(t *testing.T) {
	st, _, sp := newSpillStore(t, Config{})
	sink := sp.Sink("kvstore")
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("k%03d", i)
		sink.OnReclaim(key, []byte("demoted"))
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); st.Get(key) }()
		go func() { defer wg.Done(); st.Del(key) }()
		wg.Wait()
		if _, ok, _ := st.Get(key); ok {
			t.Fatalf("iteration %d: key %q resurrected after Del", i, key)
		}
	}
}

// TestSpillTTLSurvivesDemotion: a TTL set before demotion still expires
// the key — promotion cannot resurrect an expired entry.
func TestSpillTTLSurvivesDemotion(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	var demoted []string
	st, sma, _ := newSpillStore(t, Config{Clock: clock, OnReclaim: func(k string) { demoted = append(demoted, k) }})

	val := make([]byte, 2048)
	for i := 0; i < 16; i++ {
		k := fmt.Sprintf("k%02d", i)
		if err := st.Set(k, val); err != nil {
			t.Fatal(err)
		}
		if !st.Expire(k, 30*time.Second) {
			t.Fatalf("Expire %s failed", k)
		}
	}
	if sma.HandleDemand(2) == 0 {
		t.Fatal("demand released nothing")
	}
	if len(demoted) == 0 {
		t.Fatal("nothing demoted")
	}
	k := demoted[0]
	// Before expiry the demoted key still answers (promotion) and keeps
	// its TTL.
	if _, exists, hasTTL := st.TTL(k); !exists || !hasTTL {
		t.Fatalf("TTL lost across demotion: exists=%v hasTTL=%v", exists, hasTTL)
	}
	// After the deadline the key is gone — spill record included.
	now = now.Add(31 * time.Second)
	if _, ok, _ := st.Get(k); ok {
		t.Fatalf("expired key %s served from spill", k)
	}
	if st.Exists(k) {
		t.Fatalf("expired key %s still Exists", k)
	}
}

// TestPerShardStatsAggregate pins the satellite requirement: with
// Shards > 1, store-global totals equal the sum over PerShard.
func TestPerShardStatsAggregate(t *testing.T) {
	sma := core.New(core.Config{Machine: pages.NewPool(0)})
	st := NewFromConfig(Config{SMA: sma, Shards: 4})
	defer st.Close()

	val := make([]byte, 512)
	for i := 0; i < 100; i++ {
		if err := st.Set(fmt.Sprintf("key-%03d", i), val); err != nil {
			t.Fatal(err)
		}
	}
	if sma.HandleDemand(3) == 0 {
		t.Fatal("demand released nothing")
	}
	stats := st.Stats()
	if stats.Shards != 4 || len(stats.PerShard) != 4 {
		t.Fatalf("shards = %d, PerShard len %d", stats.Shards, len(stats.PerShard))
	}
	entries, reclaimed, liveBytes := 0, int64(0), int64(0)
	spread := 0
	for _, sh := range stats.PerShard {
		entries += sh.Entries
		reclaimed += sh.Reclaimed
		liveBytes += sh.Heap.LiveBytes
		if sh.Entries > 0 {
			spread++
		}
	}
	if entries != stats.Entries {
		t.Fatalf("PerShard entries sum %d != Entries %d", entries, stats.Entries)
	}
	if reclaimed != stats.Reclaimed {
		t.Fatalf("PerShard reclaimed sum %d != Reclaimed %d", reclaimed, stats.Reclaimed)
	}
	if liveBytes > stats.Soft.LiveBytes {
		t.Fatalf("PerShard live bytes %d exceed aggregate %d", liveBytes, stats.Soft.LiveBytes)
	}
	if spread < 2 {
		t.Fatalf("keys landed in %d shards; routing broken", spread)
	}
}

// TestSpillDemoteSpanOnTracedDemand asserts the store's reclaim callback
// tags demotions onto the active demand trace: a traced demand returns a
// "spill_demote" span with the demoted record count and payload bytes.
func TestSpillDemoteSpanOnTracedDemand(t *testing.T) {
	st, sma, _ := newSpillStore(t, Config{})
	const keys = 64
	for i := 0; i < keys; i++ {
		if err := st.Set(fmt.Sprintf("k%03d", i), []byte(fmt.Sprintf("value-%03d-%s", i, string(make([]byte, 900))))); err != nil {
			t.Fatal(err)
		}
	}
	released, spans, usage := sma.HandleDemandTraced(8, 123)
	if usage == nil || usage.SpilledBytes == 0 {
		t.Fatalf("traced demand returned no post-demand spill usage: %+v", usage)
	}
	if released == 0 {
		t.Fatal("demand released nothing")
	}
	var demote *core.DemandSpan
	for i := range spans {
		if spans[i].Kind == "spill_demote" {
			demote = &spans[i]
		}
	}
	if demote == nil {
		t.Fatalf("no spill_demote span in %+v", spans)
	}
	if demote.Count == 0 || demote.Bytes == 0 {
		t.Fatalf("empty spill_demote span: %+v", demote)
	}
	if int64(st.Stats().Reclaimed) < int64(demote.Count) {
		t.Fatalf("span counts %d demotions, store reclaimed %d", demote.Count, st.Stats().Reclaimed)
	}
	// Outside a demand, notes are dropped, not leaked into the next trace.
	if err := st.Set("fresh", []byte("x")); err != nil {
		t.Fatal(err)
	}
	_, spans, _ = sma.HandleDemandTraced(0, 124)
	for _, sp := range spans {
		if sp.Kind == "spill_demote" && sp.Count > int(st.Stats().Reclaimed) {
			t.Fatalf("stale note leaked into next trace: %+v", sp)
		}
	}
}
