package kvstore

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"softmem/internal/core"
	"softmem/internal/pages"
	"softmem/internal/sds"
)

func newStore(t *testing.T, machinePages int) (*Store, *core.SMA) {
	t.Helper()
	sma := core.New(core.Config{Machine: pages.NewPool(machinePages)})
	st := NewFromConfig(Config{SMA: sma})
	t.Cleanup(st.Close)
	return st, sma
}

func TestStoreSetGetDel(t *testing.T) {
	st, _ := newStore(t, 0)
	if err := st.Set("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := st.Get("k")
	if err != nil || !ok || string(v) != "v" {
		t.Fatalf("Get = %q, %v, %v", v, ok, err)
	}
	if !st.Exists("k") || st.Exists("nope") {
		t.Fatal("Exists wrong")
	}
	removed, err := st.Del("k")
	if err != nil || !removed {
		t.Fatalf("Del = %v, %v", removed, err)
	}
	if _, ok, _ := st.Get("k"); ok {
		t.Fatal("key survives delete")
	}
	stats := st.Stats()
	if stats.Sets != 1 || stats.Gets != 2 || stats.Hits != 1 || stats.Misses != 1 || stats.Dels != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestStoreFlushAll(t *testing.T) {
	st, _ := newStore(t, 0)
	for i := 0; i < 20; i++ {
		st.Set(string(rune('a'+i)), []byte{byte(i)})
	}
	if err := st.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 0 {
		t.Fatalf("Len = %d after FlushAll", st.Len())
	}
}

func TestStoreReclaimReturnsNotFound(t *testing.T) {
	st, sma := newStore(t, 0)
	var evicted []string
	st2 := NewFromConfig(Config{SMA: sma, Name: "second", OnReclaim: func(k string) { evicted = append(evicted, k) }})
	defer st2.Close()
	_ = st
	val := make([]byte, 4096)
	for i := 0; i < 8; i++ {
		if err := st2.Set(string(rune('a'+i)), val); err != nil {
			t.Fatal(err)
		}
	}
	released := sma.HandleDemand(2)
	if released != 2 {
		t.Fatalf("released %d", released)
	}
	if len(evicted) != 2 {
		t.Fatalf("evicted %d entries, want 2", len(evicted))
	}
	for _, k := range evicted {
		if _, ok, _ := st2.Get(k); ok {
			t.Fatalf("reclaimed key %q still found", k)
		}
	}
	if st2.Stats().Reclaimed != 2 {
		t.Fatalf("Reclaimed stat = %d", st2.Stats().Reclaimed)
	}
	// Traditional accounting shrank with the evicted keys.
	if got := sma.TraditionalBytes(); got != int64(6*(1+keyOverheadBytes)) {
		t.Fatalf("traditional = %d", got)
	}
}

func TestStoreExhaustionSurfaces(t *testing.T) {
	st, _ := newStore(t, 2) // 8 KiB machine
	val := make([]byte, 4096)
	if err := st.Set("a", val); err != nil {
		t.Fatal(err)
	}
	if err := st.Set("b", val); err != nil {
		t.Fatal(err)
	}
	if err := st.Set("c", val); err == nil {
		t.Fatal("Set beyond machine capacity succeeded without daemon")
	}
}

func startKV(t *testing.T) (*Server, string, *Store, *core.SMA) {
	t.Helper()
	st, sma := newStore(t, 0)
	srv := NewServer(st, func(string, ...any) {})
	addr, err := srv.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve() }()
	t.Cleanup(srv.Close)
	return srv, addr.String(), st, sma
}

func TestServerClientRoundtrip(t *testing.T) {
	_, addr, _, _ := startKV(t)
	cli, err := DialClient("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := cli.Set("greeting", "hello world"); err != nil {
		t.Fatal(err)
	}
	v, ok, err := cli.Get("greeting")
	if err != nil || !ok || v != "hello world" {
		t.Fatalf("Get = %q, %v, %v", v, ok, err)
	}
	if _, ok, _ := cli.Get("absent"); ok {
		t.Fatal("absent key found")
	}
	n, err := cli.DBSize()
	if err != nil || n != 1 {
		t.Fatalf("DBSize = %d, %v", n, err)
	}
	removed, err := cli.Del("greeting", "absent")
	if err != nil || removed != 1 {
		t.Fatalf("Del = %d, %v", removed, err)
	}
	info, err := cli.Info()
	if err != nil || !strings.Contains(info, "entries:0") {
		t.Fatalf("Info = %q, %v", info, err)
	}
	if err := cli.FlushAll(); err != nil {
		t.Fatal(err)
	}
}

func TestServerBinarySafeValues(t *testing.T) {
	_, addr, _, _ := startKV(t)
	cli, err := DialClient("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	value := "line1\r\nline2\x00binary\xff"
	if err := cli.Set("bin", value); err != nil {
		t.Fatal(err)
	}
	v, ok, err := cli.Get("bin")
	if err != nil || !ok || v != value {
		t.Fatalf("binary roundtrip = %q, %v, %v", v, ok, err)
	}
}

func TestServerInlineCommands(t *testing.T) {
	_, addr, _, _ := startKV(t)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	r := bufio.NewReader(nc)
	if _, err := nc.Write([]byte("SET inline works\r\n")); err != nil {
		t.Fatal(err)
	}
	line, _ := r.ReadString('\n')
	if !strings.HasPrefix(line, "+OK") {
		t.Fatalf("inline SET reply = %q", line)
	}
	nc.Write([]byte("GET inline\r\n"))
	line, _ = r.ReadString('\n')
	if !strings.HasPrefix(line, "$5") {
		t.Fatalf("inline GET header = %q", line)
	}
	line, _ = r.ReadString('\n')
	if strings.TrimRight(line, "\r\n") != "works" {
		t.Fatalf("inline GET body = %q", line)
	}
}

func TestServerErrorsAndUnknown(t *testing.T) {
	_, addr, _, _ := startKV(t)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	r := bufio.NewReader(nc)
	nc.Write([]byte("SET onlykey\r\n"))
	line, _ := r.ReadString('\n')
	if !strings.HasPrefix(line, "-ERR wrong number") {
		t.Fatalf("arity error reply = %q", line)
	}
	nc.Write([]byte("NOSUCHCMD\r\n"))
	line, _ = r.ReadString('\n')
	if !strings.HasPrefix(line, "-ERR unknown command") {
		t.Fatalf("unknown command reply = %q", line)
	}
}

func TestServerReclamationVisibleToClients(t *testing.T) {
	// The paper's Figure 2 client view: after the daemon reclaims from
	// the store, reclaimed keys answer "not found" over the wire.
	_, addr, st, sma := startKV(t)
	cli, err := DialClient("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	val := strings.Repeat("x", 2048)
	for i := 0; i < 10; i++ {
		if err := cli.Set(string(rune('a'+i)), val); err != nil {
			t.Fatal(err)
		}
	}
	released := sma.HandleDemand(3)
	if released != 3 {
		t.Fatalf("released %d pages", released)
	}
	// Six oldest entries (a..f) are gone; the rest survive.
	for i := 0; i < 6; i++ {
		if _, ok, _ := cli.Get(string(rune('a' + i))); ok {
			t.Fatalf("key %c survived reclamation", 'a'+i)
		}
	}
	for i := 6; i < 10; i++ {
		v, ok, _ := cli.Get(string(rune('a' + i)))
		if !ok || v != val {
			t.Fatalf("key %c lost or corrupted", 'a'+i)
		}
	}
	if st.Stats().Reclaimed != 6 {
		t.Fatalf("Reclaimed = %d", st.Stats().Reclaimed)
	}
}

func TestCleanupWorkRuns(t *testing.T) {
	sma := core.New(core.Config{Machine: pages.NewPool(0)})
	st := NewFromConfig(Config{SMA: sma, CleanupWork: 1000})
	defer st.Close()
	st.Set("k", make([]byte, 4096))
	if released := sma.HandleDemand(1); released != 1 {
		t.Fatalf("released %d", released)
	}
	if st.Stats().Reclaimed != 1 {
		t.Fatal("cleanup path did not run")
	}
}

func TestStoreLRUPolicy(t *testing.T) {
	sma := core.New(core.Config{Machine: pages.NewPool(0)})
	st := NewFromConfig(Config{SMA: sma, Policy: sds.EvictLRU})
	defer st.Close()
	val := make([]byte, 4096)
	st.Set("old", val)
	st.Set("new", val)
	st.Get("old") // refresh old's recency
	if released := sma.HandleDemand(1); released != 1 {
		t.Fatal("no page released")
	}
	if _, ok, _ := st.Get("old"); !ok {
		t.Fatal("recently-used key evicted under LRU")
	}
	if _, ok, _ := st.Get("new"); ok {
		t.Fatal("LRU key survived")
	}
}

func TestStoreIncrAppendStrLen(t *testing.T) {
	st, _ := newStore(t, 0)
	n, err := st.Incr("counter", 5)
	if err != nil || n != 5 {
		t.Fatalf("Incr = %d, %v", n, err)
	}
	n, err = st.Incr("counter", -2)
	if err != nil || n != 3 {
		t.Fatalf("Incr = %d, %v", n, err)
	}
	st.Set("text", []byte("not a number"))
	if _, err := st.Incr("text", 1); err == nil {
		t.Fatal("Incr on non-integer did not error")
	}
	ln, err := st.Append("log", []byte("hello"))
	if err != nil || ln != 5 {
		t.Fatalf("Append = %d, %v", ln, err)
	}
	ln, err = st.Append("log", []byte(" world"))
	if err != nil || ln != 11 {
		t.Fatalf("Append = %d, %v", ln, err)
	}
	if got := st.StrLen("log"); got != 11 {
		t.Fatalf("StrLen = %d", got)
	}
	if got := st.StrLen("absent"); got != 0 {
		t.Fatalf("StrLen(absent) = %d", got)
	}
}

func TestServerExtendedCommands(t *testing.T) {
	_, addr, _, _ := startKV(t)
	cli, err := DialClient("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	if err := cli.MSet("a", "1", "b", "2", "c", "3"); err != nil {
		t.Fatal(err)
	}
	vals, err := cli.MGet("a", "missing", "c")
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 3 {
		t.Fatalf("MGet returned %d values", len(vals))
	}
	if !vals[0].OK || vals[0].S != "1" {
		t.Fatalf("vals[0] = %+v", vals[0])
	}
	if vals[1].OK {
		t.Fatalf("missing key reported present: %+v", vals[1])
	}
	if !vals[2].OK || vals[2].S != "3" {
		t.Fatalf("vals[2] = %+v", vals[2])
	}

	n, err := cli.Incr("hits", 10)
	if err != nil || n != 10 {
		t.Fatalf("Incr = %d, %v", n, err)
	}
	n, err = cli.Incr("hits", -3)
	if err != nil || n != 7 {
		t.Fatalf("Incr = %d, %v", n, err)
	}
	ln, err := cli.Append("a", "23")
	if err != nil || ln != 3 {
		t.Fatalf("Append = %d, %v", ln, err)
	}
	v, _, _ := cli.Get("a")
	if v != "123" {
		t.Fatalf("value after append = %q", v)
	}
	sl, err := cli.StrLen("a")
	if err != nil || sl != 3 {
		t.Fatalf("StrLen = %d, %v", sl, err)
	}
	// Arity errors for the new commands.
	if err := cli.MSet("odd"); err == nil {
		t.Fatal("odd MSet accepted")
	}
	if vals, err := cli.MGet(); err != nil || vals != nil {
		t.Fatalf("empty MGet = %v, %v", vals, err)
	}
}

func TestRunLoadAgainstServer(t *testing.T) {
	_, addr, st, sma := startKV(t)
	res, err := RunLoad(LoadGenConfig{
		Addr: addr, Conns: 2, Requests: 4000,
		ReadFraction: 0.8, Keys: 500, ValueBytes: 128, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Gets == 0 || res.Sets == 0 {
		t.Fatalf("ops: gets=%d sets=%d", res.Gets, res.Sets)
	}
	if res.Throughput <= 0 {
		t.Fatal("no throughput recorded")
	}
	// With refill-on-miss, the hit rate must climb well above zero over
	// a small Zipf keyspace.
	if res.HitRate() < 0.3 {
		t.Fatalf("hit rate %.2f implausibly low", res.HitRate())
	}
	if res.GetLatency.Count() == 0 || res.SetLatency.Count() == 0 {
		t.Fatal("latency histograms empty")
	}
	if st.Len() == 0 {
		t.Fatal("store empty after load")
	}
	_ = sma
	var sb strings.Builder
	res.Fprint(&sb)
	if !strings.Contains(sb.String(), "throughput") {
		t.Fatalf("Fprint = %q", sb.String())
	}
}

func TestRunLoadSurvivesReclamation(t *testing.T) {
	// Reclamation during load: clients see misses, never errors.
	_, addr, _, sma := startKV(t)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			sma.HandleDemand(4)
			time.Sleep(time.Millisecond)
		}
	}()
	res, err := RunLoad(LoadGenConfig{
		Addr: addr, Conns: 2, Requests: 6000,
		ReadFraction: 0.7, Keys: 300, ValueBytes: 1024, Seed: 9,
	})
	<-done
	if err != nil {
		t.Fatalf("load failed under reclamation: %v", err)
	}
	if res.Misses == 0 {
		t.Fatal("no misses despite concurrent reclamation")
	}
}

func TestRunLoadBadAddr(t *testing.T) {
	if _, err := RunLoad(LoadGenConfig{Addr: "127.0.0.1:1", Requests: 10}); err == nil {
		t.Fatal("load against dead server succeeded")
	}
}

func TestTTLExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	sma := core.New(core.Config{Machine: pages.NewPool(0)})
	st := NewFromConfig(Config{SMA: sma, Clock: clock})
	defer st.Close()

	st.Set("k", []byte("v"))
	if !st.Expire("k", 10*time.Second) {
		t.Fatal("Expire on existing key returned false")
	}
	if st.Expire("absent", time.Second) {
		t.Fatal("Expire on absent key returned true")
	}
	d, exists, hasTTL := st.TTL("k")
	if !exists || !hasTTL || d != 10*time.Second {
		t.Fatalf("TTL = %v, %v, %v", d, exists, hasTTL)
	}
	// Advance past the deadline: the key lazily expires on access.
	now = now.Add(11 * time.Second)
	if _, ok, _ := st.Get("k"); ok {
		t.Fatal("expired key still readable")
	}
	if st.Exists("k") {
		t.Fatal("expired key still exists")
	}
	if st.Expired() != 1 {
		t.Fatalf("Expired = %d", st.Expired())
	}
	// Soft memory was returned: the entry is gone from the table.
	if st.Len() != 0 {
		t.Fatalf("Len = %d", st.Len())
	}
}

func TestTTLPersist(t *testing.T) {
	now := time.Unix(1000, 0)
	sma := core.New(core.Config{Machine: pages.NewPool(0)})
	st := NewFromConfig(Config{SMA: sma, Clock: func() time.Time { return now }})
	defer st.Close()
	st.Set("k", []byte("v"))
	st.Expire("k", 5*time.Second)
	if !st.Persist("k") {
		t.Fatal("Persist returned false")
	}
	now = now.Add(time.Hour)
	if _, ok, _ := st.Get("k"); !ok {
		t.Fatal("persisted key expired")
	}
	if st.Persist("k") {
		t.Fatal("second Persist returned true (no TTL left)")
	}
	if st.Persist("absent") {
		t.Fatal("Persist on absent key returned true")
	}
	_, _, hasTTL := st.TTL("k")
	if hasTTL {
		t.Fatal("TTL survives Persist")
	}
}

func TestTTLSweep(t *testing.T) {
	now := time.Unix(1000, 0)
	sma := core.New(core.Config{Machine: pages.NewPool(0)})
	st := NewFromConfig(Config{SMA: sma, Clock: func() time.Time { return now }})
	defer st.Close()
	for i := 0; i < 10; i++ {
		key := string(rune('a' + i))
		st.Set(key, []byte("v"))
		if i < 6 {
			st.Expire(key, time.Duration(i+1)*time.Second)
		}
	}
	now = now.Add(4 * time.Second) // TTLs 1..4s are due
	if n := st.SweepExpired(); n != 4 {
		t.Fatalf("SweepExpired = %d, want 4", n)
	}
	if st.Len() != 6 {
		t.Fatalf("Len = %d after sweep", st.Len())
	}
}

func TestTTLClearedOnDeleteAndReclaim(t *testing.T) {
	now := time.Unix(1000, 0)
	sma := core.New(core.Config{Machine: pages.NewPool(0)})
	st := NewFromConfig(Config{SMA: sma, Clock: func() time.Time { return now }})
	defer st.Close()
	st.Set("k", make([]byte, 4096))
	st.Expire("k", time.Second)
	st.Del("k")
	// Re-create: the old TTL must not linger.
	st.Set("k", []byte("v"))
	now = now.Add(time.Hour)
	if _, ok, _ := st.Get("k"); !ok {
		t.Fatal("stale TTL from deleted key expired the new value")
	}
	// Reclamation clears TTLs too.
	st.Set("big", make([]byte, 4096))
	st.Expire("big", time.Second)
	sma.HandleDemand(1)
	st.Set("big", []byte("fresh"))
	now = now.Add(time.Hour)
	if _, ok, _ := st.Get("big"); !ok {
		t.Fatal("stale TTL from reclaimed key expired the new value")
	}
}

func TestServerTTLCommands(t *testing.T) {
	_, addr, _, _ := startKV(t)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	r := bufio.NewReader(nc)
	send := func(line, wantPrefix string) {
		t.Helper()
		nc.Write([]byte(line + "\r\n"))
		got, _ := r.ReadString('\n')
		if !strings.HasPrefix(got, wantPrefix) {
			t.Fatalf("%q replied %q, want prefix %q", line, got, wantPrefix)
		}
	}
	send("SET k v", "+OK")
	send("EXPIRE k 100", ":1")
	send("TTL k", ":100")
	send("PERSIST k", ":1")
	send("TTL k", ":-1")
	send("TTL missing", ":-2")
	send("EXPIRE missing 5", ":0")
	send("EXPIRE k notanumber", "-ERR")
}

func TestKeysGlob(t *testing.T) {
	st, _ := newStore(t, 0)
	for _, k := range []string{"user:1", "user:2", "sess:9", "user:10"} {
		st.Set(k, []byte("x"))
	}
	keys, err := st.Keys("user:*")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 3 || keys[0] != "user:1" || keys[1] != "user:10" || keys[2] != "user:2" {
		t.Fatalf("Keys = %v", keys)
	}
	keys, _ = st.Keys("*")
	if len(keys) != 4 {
		t.Fatalf("Keys(*) = %v", keys)
	}
	keys, _ = st.Keys("sess:?")
	if len(keys) != 1 || keys[0] != "sess:9" {
		t.Fatalf("Keys(sess:?) = %v", keys)
	}
	if _, err := st.Keys("[bad"); err == nil {
		t.Fatal("bad pattern accepted")
	}
}

func TestServerKeysCommand(t *testing.T) {
	_, addr, _, _ := startKV(t)
	cli, err := DialClient("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	cli.MSet("a:1", "x", "a:2", "y", "b:1", "z")
	// KEYS replies with an array; reuse MGet's array reader via raw conn.
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	r := bufio.NewReader(nc)
	nc.Write([]byte("KEYS a:*\r\n"))
	hdr, _ := r.ReadString('\n')
	if !strings.HasPrefix(hdr, "*2") {
		t.Fatalf("KEYS header = %q", hdr)
	}
}

func TestHashFieldOps(t *testing.T) {
	st, _ := newStore(t, 0)
	created, err := st.HSet("user:1", "name", []byte("ada"))
	if err != nil || !created {
		t.Fatalf("HSet = %v, %v", created, err)
	}
	created, _ = st.HSet("user:1", "name", []byte("ada lovelace"))
	if created {
		t.Fatal("replace reported as creation")
	}
	st.HSet("user:1", "role", []byte("admin"))
	st.HSet("user:2", "name", []byte("bob"))

	v, ok, err := st.HGet("user:1", "name")
	if err != nil || !ok || string(v) != "ada lovelace" {
		t.Fatalf("HGet = %q, %v, %v", v, ok, err)
	}
	if !st.HExists("user:1", "role") || st.HExists("user:1", "nope") {
		t.Fatal("HExists wrong")
	}
	if st.HLen("user:1") != 2 || st.HLen("user:2") != 1 || st.HLen("absent") != 0 {
		t.Fatalf("HLen = %d/%d/%d", st.HLen("user:1"), st.HLen("user:2"), st.HLen("absent"))
	}
	all, err := st.HGetAll("user:1")
	if err != nil || len(all) != 2 || string(all["role"]) != "admin" {
		t.Fatalf("HGetAll = %v, %v", all, err)
	}
	n, err := st.HDel("user:1", "name", "missing")
	if err != nil || n != 1 {
		t.Fatalf("HDel = %d, %v", n, err)
	}
	if st.HLen("user:1") != 1 {
		t.Fatalf("HLen after HDel = %d", st.HLen("user:1"))
	}
	// Hashes and plain keys do not collide.
	st.Set("user:2", []byte("a-string"))
	v2, ok, _ := st.Get("user:2")
	if !ok || string(v2) != "a-string" {
		t.Fatal("string key clobbered by hash")
	}
	if _, ok, _ := st.HGet("user:2", "name"); !ok {
		t.Fatal("hash field clobbered by string key")
	}
}

func TestHashReclamationCleansFieldIndex(t *testing.T) {
	sma := core.New(core.Config{Machine: pages.NewPool(0)})
	st := NewFromConfig(Config{SMA: sma})
	defer st.Close()
	val := make([]byte, 4096)
	for i := 0; i < 8; i++ {
		if _, err := st.HSet("obj", fmt.Sprintf("f%d", i), val); err != nil {
			t.Fatal(err)
		}
	}
	released := sma.HandleDemand(4)
	if released != 4 {
		t.Fatalf("released %d", released)
	}
	// The field index shrank with the reclaimed values (callback path).
	if st.HLen("obj") != 4 {
		t.Fatalf("HLen = %d after reclaiming half, want 4", st.HLen("obj"))
	}
	all, err := st.HGetAll("obj")
	if err != nil || len(all) != 4 {
		t.Fatalf("HGetAll = %d fields, %v", len(all), err)
	}
	if st.Stats().Reclaimed != 4 {
		t.Fatalf("Reclaimed = %d", st.Stats().Reclaimed)
	}
}

func TestServerHashCommands(t *testing.T) {
	_, addr, _, _ := startKV(t)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	r := bufio.NewReader(nc)
	send := func(line, wantPrefix string) {
		t.Helper()
		nc.Write([]byte(line + "\r\n"))
		got, _ := r.ReadString('\n')
		if !strings.HasPrefix(got, wantPrefix) {
			t.Fatalf("%q replied %q, want prefix %q", line, got, wantPrefix)
		}
	}
	send("HSET h f1 v1", ":1")
	send("HSET h f1 v1b", ":0")
	send("HSET h f2 v2", ":1")
	send("HLEN h", ":2")
	send("HEXISTS h f1", ":1")
	send("HEXISTS h nope", ":0")
	send("HGET h f1", "$3")
	r.ReadString('\n') // consume body
	send("HDEL h f1", ":1")
	send("HLEN h", ":1")
	// HGETALL: array of 2 (field + value).
	nc.Write([]byte("HGETALL h\r\n"))
	hdr, _ := r.ReadString('\n')
	if !strings.HasPrefix(hdr, "*2") {
		t.Fatalf("HGETALL header = %q", hdr)
	}
	for i := 0; i < 4; i++ { // drain $len + body for field and value
		r.ReadString('\n')
	}
	send("HGET h missing", "$-1")
	send("HSET h onlytwo", "-ERR")
}

func TestListOps(t *testing.T) {
	st, _ := newStore(t, 0)
	n, err := st.RPush("q", []byte("b"), []byte("c"))
	if err != nil || n != 2 {
		t.Fatalf("RPush = %d, %v", n, err)
	}
	n, err = st.LPush("q", []byte("a"))
	if err != nil || n != 3 {
		t.Fatalf("LPush = %d, %v", n, err)
	}
	if st.LLen("q") != 3 {
		t.Fatalf("LLen = %d", st.LLen("q"))
	}
	vals, err := st.LRange("q", 0, -1)
	if err != nil || len(vals) != 3 {
		t.Fatalf("LRange = %d vals, %v", len(vals), err)
	}
	want := []string{"a", "b", "c"}
	for i, v := range vals {
		if string(v) != want[i] {
			t.Fatalf("LRange[%d] = %q, want %q", i, v, want[i])
		}
	}
	// Negative indexing.
	vals, _ = st.LRange("q", -2, -1)
	if len(vals) != 2 || string(vals[0]) != "b" {
		t.Fatalf("LRange(-2,-1) = %v", vals)
	}
	v, ok, err := st.LPop("q")
	if err != nil || !ok || string(v) != "a" {
		t.Fatalf("LPop = %q, %v, %v", v, ok, err)
	}
	v, ok, _ = st.RPop("q")
	if !ok || string(v) != "c" {
		t.Fatalf("RPop = %q, %v", v, ok)
	}
	if st.LLen("q") != 1 {
		t.Fatalf("LLen = %d", st.LLen("q"))
	}
	if _, ok, _ := st.LPop("empty"); ok {
		t.Fatal("LPop on missing key returned ok")
	}
	if vals, _ := st.LRange("empty", 0, -1); vals != nil {
		t.Fatalf("LRange empty = %v", vals)
	}
}

func TestListReclaimDropsOldestInsertions(t *testing.T) {
	sma := core.New(core.Config{Machine: pages.NewPool(0)})
	st := NewFromConfig(Config{SMA: sma})
	defer st.Close()
	val := make([]byte, 4096)
	for i := 0; i < 8; i++ {
		val[0] = byte(i)
		if _, err := st.RPush("log", val); err != nil {
			t.Fatal(err)
		}
	}
	released := sma.HandleDemand(4)
	if released != 4 {
		t.Fatalf("released %d", released)
	}
	// The four oldest insertions are gone; the index healed.
	if st.LLen("log") != 4 {
		t.Fatalf("LLen = %d after reclaim, want 4", st.LLen("log"))
	}
	vals, err := st.LRange("log", 0, -1)
	if err != nil || len(vals) != 4 {
		t.Fatalf("LRange = %d, %v", len(vals), err)
	}
	if vals[0][0] != 4 {
		t.Fatalf("survivor head = %d, want 4", vals[0][0])
	}
	// Pops skip nothing and return survivors in order.
	v, ok, _ := st.LPop("log")
	if !ok || v[0] != 4 {
		t.Fatalf("LPop = %v, %v", v, ok)
	}
}

func TestServerListCommands(t *testing.T) {
	_, addr, _, _ := startKV(t)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	r := bufio.NewReader(nc)
	send := func(line, wantPrefix string) string {
		t.Helper()
		nc.Write([]byte(line + "\r\n"))
		got, _ := r.ReadString('\n')
		if !strings.HasPrefix(got, wantPrefix) {
			t.Fatalf("%q replied %q, want prefix %q", line, got, wantPrefix)
		}
		return got
	}
	send("RPUSH mylist one two", ":2")
	send("LPUSH mylist zero", ":3")
	send("LLEN mylist", ":3")
	nc.Write([]byte("LRANGE mylist 0 -1\r\n"))
	hdr, _ := r.ReadString('\n')
	if !strings.HasPrefix(hdr, "*3") {
		t.Fatalf("LRANGE header = %q", hdr)
	}
	for i := 0; i < 6; i++ {
		r.ReadString('\n')
	}
	send("LPOP mylist", "$4") // "zero"
	r.ReadString('\n')
	send("RPOP mylist", "$3") // "two"
	r.ReadString('\n')
	send("LPOP nosuch", "$-1")
	send("LRANGE mylist notanum 2", "-ERR")
}

// Values larger than one soft page are stored in multi-page spans;
// the GET path must assemble them instead of failing with the
// allocator's "use ReadAt/WriteAt" error (regression: SET accepted
// such values but every read of them errored).
func TestStoreMultiPageValue(t *testing.T) {
	st, _ := newStore(t, 0)
	want := make([]byte, 3*pages.Size+5)
	for i := range want {
		want[i] = byte(i * 13)
	}
	if err := st.Set("big", want); err != nil {
		t.Fatal(err)
	}
	v, ok, err := st.Get("big")
	if err != nil || !ok || !bytes.Equal(v, want) {
		t.Fatalf("Get big = ok=%v err=%v len=%d want %d", ok, err, len(v), len(want))
	}
	var scratch []byte
	v, ok, err = st.GetAppend(scratch, "big")
	if err != nil || !ok || !bytes.Equal(v, want) {
		t.Fatalf("GetAppend big = ok=%v err=%v len=%d", ok, err, len(v))
	}
}
