package kvstore

import (
	"sync"
	"sync/atomic"
	"time"
)

// ttlTable tracks per-key expiry deadlines in traditional memory.
// Expiration is lazy (checked on access) plus sweepable: expired entries
// free their soft memory voluntarily, which is cheaper than waiting for
// a reclamation demand to take them.
type ttlTable struct {
	mu sync.Mutex
	m  map[string]time.Time
	// n mirrors len(m) so the hot read paths (every GET checks expiry)
	// skip the mutex entirely while no TTLs are set.
	n   atomic.Int64
	now func() time.Time
}

func newTTLTable(now func() time.Time) *ttlTable {
	if now == nil {
		now = time.Now
	}
	return &ttlTable{m: make(map[string]time.Time), now: now}
}

// set records a deadline for key.
func (t *ttlTable) set(key string, deadline time.Time) {
	t.mu.Lock()
	if _, ok := t.m[key]; !ok {
		t.n.Add(1)
	}
	t.m[key] = deadline
	t.mu.Unlock()
}

// clear removes key's deadline, reporting whether one existed.
func (t *ttlTable) clear(key string) bool {
	if t.n.Load() == 0 {
		return false
	}
	t.mu.Lock()
	_, ok := t.m[key]
	if ok {
		delete(t.m, key)
		t.n.Add(-1)
	}
	t.mu.Unlock()
	return ok
}

// due reports whether key has an expired deadline.
func (t *ttlTable) due(key string) bool {
	if t.n.Load() == 0 {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	dl, ok := t.m[key]
	return ok && !t.now().Before(dl)
}

// remaining returns the time left (hasTTL=false when none set).
func (t *ttlTable) remaining(key string) (time.Duration, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	dl, ok := t.m[key]
	if !ok {
		return 0, false
	}
	d := dl.Sub(t.now())
	if d < 0 {
		d = 0
	}
	return d, true
}

// expired returns all keys whose deadline has passed.
func (t *ttlTable) expired() []string {
	if t.n.Load() == 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	var out []string
	for k, dl := range t.m {
		if !now.Before(dl) {
			out = append(out, k)
		}
	}
	return out
}

// Expire sets key's time-to-live, reporting whether the key exists
// (demoted-but-spilled keys count as existing).
func (s *Store) Expire(key string, d time.Duration) bool {
	if !s.present(key) {
		return false
	}
	s.shard(key).ttl.set(key, s.now().Add(d))
	return true
}

// present reports whether key lives in the hot tier or the spill tier,
// without promoting it.
func (s *Store) present(key string) bool {
	if s.table(key).Contains(key) {
		return true
	}
	return s.spill != nil && s.spill.Contains(key)
}

// TTL reports key's remaining time-to-live. exists is false for missing
// keys; hasTTL is false for keys without a deadline.
func (s *Store) TTL(key string) (d time.Duration, exists, hasTTL bool) {
	s.expireIfDue(key)
	if !s.present(key) {
		return 0, false, false
	}
	d, hasTTL = s.shard(key).ttl.remaining(key)
	return d, true, hasTTL
}

// Persist removes key's time-to-live, reporting whether one was removed.
func (s *Store) Persist(key string) bool {
	if !s.present(key) {
		return false
	}
	return s.shard(key).ttl.clear(key)
}

// expireIfDue lazily removes an expired key, freeing its soft memory.
// With a spill tier, an expired key's demoted record is purged too, so
// expiry cannot be undone by a later promotion.
func (s *Store) expireIfDue(key string) {
	sh := s.shard(key)
	if sh.ttl.due(key) {
		sh.ttl.clear(key)
		removed, _ := sh.ht.Delete(key)
		if s.spill != nil {
			removed = s.spill.Drop(key) || removed
			s.promoMarkDeleted(key)
		}
		if removed {
			s.expired.Add(1)
		}
	}
}

// sweepShardDirect is one shard's sweep through the store's direct
// methods — the single-shard fallback when the sweep does not go
// through the owner ring.
func (s *Store) sweepShardDirect(si int) int {
	sh := s.shards[si]
	n := 0
	for _, key := range sh.ttl.expired() {
		sh.ttl.clear(key)
		removed, _ := sh.ht.Delete(key)
		if s.spill != nil {
			removed = s.spill.Drop(key) || removed
			s.promoMarkDeleted(key)
		}
		if removed {
			s.expired.Add(1)
			n++
		}
	}
	return n
}

// SweepExpired removes every expired key, returning how many were
// collected. Servers call it periodically so idle expired entries do
// not linger in soft memory. The sweep is submitted through the shard
// owner rings (one internal command per shard holding TTLs), so expiry
// executes run-to-completion on each owner and never races that shard's
// command stream; shards with no deadlines cost one atomic load.
func (s *Store) SweepExpired() int {
	b := s.NewBatch()
	for i, sh := range s.shards {
		if sh.ttl.n.Load() == 0 {
			continue
		}
		b.addSweep(i)
	}
	if b.Len() == 0 {
		return 0
	}
	_ = b.Exec()
	n := 0
	for i := 0; i < b.Len(); i++ {
		n += int(b.Cmd(i).N)
	}
	return n
}

// Expired returns the number of entries collected by TTL expiry.
func (s *Store) Expired() int64 { return s.expired.Load() }
