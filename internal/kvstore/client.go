package kvstore

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"sync"
)

// Client is a minimal RESP client for the Server, used by the examples
// and integration tests. Single calls are one request, one reply; use
// Pipeline to batch many commands into one write. Safe for concurrent
// use (calls serialize).
type Client struct {
	mu  sync.Mutex
	nc  net.Conn
	rr  replyReader
	w   *bufio.Writer
	enc []byte // request encoding scratch, reused across calls
}

// DialClient connects to a kvstore server.
func DialClient(network, addr string) (*Client, error) {
	nc, err := net.Dial(network, addr)
	if err != nil {
		return nil, fmt.Errorf("kvstore: dial: %w", err)
	}
	return &Client{
		nc: nc,
		rr: replyReader{lr: lineReader{r: bufio.NewReaderSize(nc, connBufSize)}},
		w:  bufio.NewWriterSize(nc, connBufSize),
	}, nil
}

// IsOverloaded reports whether err is the server's -BUSY shed-load
// reply: the addressed shard owner's command ring was full, so the
// store refused the command instead of queueing it. The command did not
// execute; back off and retry.
func IsOverloaded(err error) bool {
	re, ok := err.(ReplyError)
	return ok && len(re) >= 4 && re[:4] == "BUSY"
}

// do sends one command as a RESP array and reads the reply. The value
// is a caller-owned copy (it must survive past the mutex).
func (c *Client) do(args ...string) ([]byte, bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.enc = appendCommand(c.enc[:0], args...)
	if _, err := c.w.Write(c.enc); err != nil {
		return nil, false, err
	}
	if err := c.w.Flush(); err != nil {
		return nil, false, err
	}
	v, ok, err := c.rr.read()
	if v != nil {
		v = append([]byte(nil), v...)
	}
	return v, ok, err
}

// Do sends one arbitrary command and returns a caller-owned copy of
// the reply value; ok is false for nil replies. Server error replies
// (including cluster redirects — see IsMoved) come back as ReplyError.
// The cluster layer uses it for commands the typed helpers do not
// cover (RSET, WAIT, CLUSTER).
func (c *Client) Do(args ...string) ([]byte, bool, error) {
	return c.do(args...)
}

// Ping checks liveness.
func (c *Client) Ping() error {
	v, _, err := c.do("PING")
	if err != nil {
		return err
	}
	if string(v) != "PONG" {
		return fmt.Errorf("kvstore: unexpected ping reply %q", v)
	}
	return nil
}

// Set stores value under key.
func (c *Client) Set(key, value string) error {
	_, _, err := c.do("SET", key, value)
	return err
}

// Get fetches key; ok is false on miss (including reclaimed entries).
func (c *Client) Get(key string) (string, bool, error) {
	v, ok, err := c.do("GET", key)
	return string(v), ok, err
}

// Value is one MGET result: OK reports presence.
type Value struct {
	S  string
	OK bool
}

// MSet stores alternating key/value pairs.
func (c *Client) MSet(pairs ...string) error {
	if len(pairs) == 0 || len(pairs)%2 != 0 {
		return fmt.Errorf("kvstore: MSet needs key/value pairs, got %d args", len(pairs))
	}
	_, _, err := c.do(append([]string{"MSET"}, pairs...)...)
	return err
}

// MGet fetches several keys in one round-trip; absent (or reclaimed)
// keys come back with OK=false.
func (c *Client) MGet(keys ...string) ([]Value, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.enc = appendCommand(c.enc[:0], append([]string{"MGET"}, keys...)...)
	if _, err := c.w.Write(c.enc); err != nil {
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	hdr, err := c.rr.lr.readLine()
	if err != nil {
		return nil, err
	}
	if len(hdr) == 0 || hdr[0] != '*' {
		return nil, fmt.Errorf("kvstore: expected array reply, got %q", hdr)
	}
	n, convOK := asciiInt(hdr[1:])
	if !convOK || n < 0 {
		return nil, fmt.Errorf("kvstore: bad array header %q", hdr)
	}
	out := make([]Value, 0, n)
	for i := 0; i < n; i++ {
		v, ok, err := c.rr.read()
		if err != nil {
			return nil, err
		}
		out = append(out, Value{S: string(v), OK: ok})
	}
	return out, nil
}

// Incr adjusts the integer at key by delta and returns the new value.
func (c *Client) Incr(key string, delta int64) (int64, error) {
	v, _, err := c.do("INCRBY", key, strconv.FormatInt(delta, 10))
	if err != nil {
		return 0, err
	}
	return strconv.ParseInt(string(v), 10, 64)
}

// Append appends data to key's value and returns the new length.
func (c *Client) Append(key, data string) (int, error) {
	v, _, err := c.do("APPEND", key, data)
	if err != nil {
		return 0, err
	}
	return strconv.Atoi(string(v))
}

// StrLen returns the length of key's value (0 if absent).
func (c *Client) StrLen(key string) (int, error) {
	v, _, err := c.do("STRLEN", key)
	if err != nil {
		return 0, err
	}
	return strconv.Atoi(string(v))
}

// Del removes keys, returning how many existed.
func (c *Client) Del(keys ...string) (int, error) {
	args := append([]string{"DEL"}, keys...)
	v, _, err := c.do(args...)
	if err != nil {
		return 0, err
	}
	return strconv.Atoi(string(v))
}

// DBSize returns the number of live entries.
func (c *Client) DBSize() (int, error) {
	v, _, err := c.do("DBSIZE")
	if err != nil {
		return 0, err
	}
	return strconv.Atoi(string(v))
}

// Info returns the server's INFO text.
func (c *Client) Info() (string, error) {
	v, _, err := c.do("INFO")
	return string(v), err
}

// FlushAll clears the store.
func (c *Client) FlushAll() error {
	_, _, err := c.do("FLUSHALL")
	return err
}

// Pipeline accumulates commands and sends them in one batch, reading
// the replies in order — the client-side half of the server's flush
// coalescing. Not safe for concurrent use; Exec serializes against the
// owning client's other calls.
type Pipeline struct {
	c   *Client
	buf []byte
	n   int
}

// Pipeline returns a reusable batch bound to c.
func (c *Client) Pipeline() *Pipeline { return &Pipeline{c: c} }

// Command queues one command. Nothing is written until Exec.
func (p *Pipeline) Command(args ...string) {
	p.buf = appendCommand(p.buf, args...)
	p.n++
}

// Len reports how many commands are queued.
func (p *Pipeline) Len() int { return p.n }

// Exec writes every queued command in a single batch, then streams each
// reply to fn in queue order and resets the pipeline for reuse. The
// value passed to fn aliases the client's scratch and is only valid for
// the duration of the callback. Per-command server errors arrive as a
// ReplyError and do not stop the batch; transport or protocol failures
// abort and are returned.
func (p *Pipeline) Exec(fn func(i int, value []byte, ok bool, err error)) error {
	c := p.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.w.Write(p.buf); err != nil {
		return err
	}
	if err := c.w.Flush(); err != nil {
		return err
	}
	for i := 0; i < p.n; i++ {
		v, ok, err := c.rr.read()
		if err != nil {
			if _, isReply := err.(ReplyError); !isReply {
				return err
			}
		}
		if fn != nil {
			fn(i, v, ok, err)
		}
	}
	p.buf = p.buf[:0]
	p.n = 0
	return nil
}

// Close tears down the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.w.WriteString("*1\r\n$4\r\nQUIT\r\n"); err == nil {
		c.w.Flush()
	}
	return c.nc.Close()
}
