package kvstore

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
)

// Client is a minimal RESP client for the Server, used by the examples
// and integration tests. It pipelines nothing: one request, one reply.
// Safe for concurrent use (calls serialize).
type Client struct {
	mu sync.Mutex
	nc net.Conn
	r  *bufio.Reader
	w  *bufio.Writer
}

// DialClient connects to a kvstore server.
func DialClient(network, addr string) (*Client, error) {
	nc, err := net.Dial(network, addr)
	if err != nil {
		return nil, fmt.Errorf("kvstore: dial: %w", err)
	}
	return &Client{nc: nc, r: bufio.NewReader(nc), w: bufio.NewWriter(nc)}, nil
}

// do sends one command as a RESP array and reads the reply.
func (c *Client) do(args ...string) ([]byte, bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.w.WriteString("*" + strconv.Itoa(len(args)) + "\r\n"); err != nil {
		return nil, false, err
	}
	for _, a := range args {
		if _, err := c.w.WriteString("$" + strconv.Itoa(len(a)) + "\r\n" + a + "\r\n"); err != nil {
			return nil, false, err
		}
	}
	if err := c.w.Flush(); err != nil {
		return nil, false, err
	}
	return readReply(c.r)
}

// Ping checks liveness.
func (c *Client) Ping() error {
	v, _, err := c.do("PING")
	if err != nil {
		return err
	}
	if string(v) != "PONG" {
		return fmt.Errorf("kvstore: unexpected ping reply %q", v)
	}
	return nil
}

// Set stores value under key.
func (c *Client) Set(key, value string) error {
	_, _, err := c.do("SET", key, value)
	return err
}

// Get fetches key; ok is false on miss (including reclaimed entries).
func (c *Client) Get(key string) (string, bool, error) {
	v, ok, err := c.do("GET", key)
	return string(v), ok, err
}

// Value is one MGET result: OK reports presence.
type Value struct {
	S  string
	OK bool
}

// MSet stores alternating key/value pairs.
func (c *Client) MSet(pairs ...string) error {
	if len(pairs) == 0 || len(pairs)%2 != 0 {
		return fmt.Errorf("kvstore: MSet needs key/value pairs, got %d args", len(pairs))
	}
	_, _, err := c.do(append([]string{"MSET"}, pairs...)...)
	return err
}

// MGet fetches several keys in one round-trip; absent (or reclaimed)
// keys come back with OK=false.
func (c *Client) MGet(keys ...string) ([]Value, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	args := append([]string{"MGET"}, keys...)
	if _, err := c.w.WriteString("*" + strconv.Itoa(len(args)) + "\r\n"); err != nil {
		return nil, err
	}
	for _, a := range args {
		if _, err := c.w.WriteString("$" + strconv.Itoa(len(a)) + "\r\n" + a + "\r\n"); err != nil {
			return nil, err
		}
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	hdr, err := c.r.ReadString('\n')
	if err != nil {
		return nil, err
	}
	hdr = strings.TrimRight(hdr, "\r\n")
	if len(hdr) == 0 || hdr[0] != '*' {
		return nil, fmt.Errorf("kvstore: expected array reply, got %q", hdr)
	}
	n, err := strconv.Atoi(hdr[1:])
	if err != nil || n < 0 {
		return nil, fmt.Errorf("kvstore: bad array header %q", hdr)
	}
	out := make([]Value, 0, n)
	for i := 0; i < n; i++ {
		v, ok, err := readReply(c.r)
		if err != nil {
			return nil, err
		}
		out = append(out, Value{S: string(v), OK: ok})
	}
	return out, nil
}

// Incr adjusts the integer at key by delta and returns the new value.
func (c *Client) Incr(key string, delta int64) (int64, error) {
	v, _, err := c.do("INCRBY", key, strconv.FormatInt(delta, 10))
	if err != nil {
		return 0, err
	}
	return strconv.ParseInt(string(v), 10, 64)
}

// Append appends data to key's value and returns the new length.
func (c *Client) Append(key, data string) (int, error) {
	v, _, err := c.do("APPEND", key, data)
	if err != nil {
		return 0, err
	}
	return strconv.Atoi(string(v))
}

// StrLen returns the length of key's value (0 if absent).
func (c *Client) StrLen(key string) (int, error) {
	v, _, err := c.do("STRLEN", key)
	if err != nil {
		return 0, err
	}
	return strconv.Atoi(string(v))
}

// Del removes keys, returning how many existed.
func (c *Client) Del(keys ...string) (int, error) {
	args := append([]string{"DEL"}, keys...)
	v, _, err := c.do(args...)
	if err != nil {
		return 0, err
	}
	return strconv.Atoi(string(v))
}

// DBSize returns the number of live entries.
func (c *Client) DBSize() (int, error) {
	v, _, err := c.do("DBSIZE")
	if err != nil {
		return 0, err
	}
	return strconv.Atoi(string(v))
}

// Info returns the server's INFO text.
func (c *Client) Info() (string, error) {
	v, _, err := c.do("INFO")
	return string(v), err
}

// FlushAll clears the store.
func (c *Client) FlushAll() error {
	_, _, err := c.do("FLUSHALL")
	return err
}

// Close tears down the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.w.WriteString("*1\r\n$4\r\nQUIT\r\n"); err == nil {
		c.w.Flush()
	}
	return c.nc.Close()
}
