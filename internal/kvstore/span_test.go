package kvstore

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"softmem/internal/core"
	"softmem/internal/metrics"
	"softmem/internal/pages"
)

// newAttribStore builds a store with attribution armed at the given
// slowlog threshold/size (RegisterMetrics is what arms it, matching the
// binaries).
func newAttribStore(t *testing.T, threshold time.Duration, size int) (*Store, *metrics.Registry) {
	t.Helper()
	sma := core.New(core.Config{Machine: pages.NewPool(0)})
	st := NewFromConfig(Config{SMA: sma, SlowLogThreshold: threshold, SlowLogSize: size})
	t.Cleanup(st.Close)
	reg := metrics.NewRegistry()
	st.RegisterMetrics(reg)
	return st, reg
}

func TestSlowLogRingNewestFirst(t *testing.T) {
	l := newSlowLog(0, 4)
	for i := 0; i < 10; i++ {
		l.record(SlowEntry{Cmd: "GET", TotalNs: int64(i)})
	}
	got := l.snapshot()
	if len(got) != 4 {
		t.Fatalf("snapshot holds %d entries, want ring size 4", len(got))
	}
	for i, e := range got {
		if want := uint64(10 - i); e.Seq != want {
			t.Errorf("entry[%d].Seq = %d, want %d (newest first)", i, e.Seq, want)
		}
		if e.UnixNs == 0 {
			t.Errorf("entry[%d] has no timestamp", i)
		}
	}
}

// TestSlowLogInlineThreshold: the serial (unpipelined) dispatch path
// records exec-only entries, and only past the threshold.
func TestSlowLogInlineThreshold(t *testing.T) {
	reg := metrics.NewRegistry()
	a := newAttribState(reg, (50 * time.Microsecond).Nanoseconds(), 8)
	args := [][]byte{[]byte("GET"), []byte("hot-key")}

	a.observeInline("GET", args, 10*time.Microsecond)
	if got := a.slow.snapshot(); len(got) != 0 {
		t.Fatalf("sub-threshold command landed in slowlog: %+v", got)
	}
	a.observeInline("GET", args, 2*time.Millisecond)
	got := a.slow.snapshot()
	if len(got) != 1 {
		t.Fatalf("slowlog entries = %d, want 1", len(got))
	}
	e := got[0]
	if e.Cmd != "GET" || e.Key != "hot-key" {
		t.Errorf("entry = %+v, want cmd GET key hot-key", e)
	}
	if e.ExecNs != e.TotalNs || e.TotalNs != (2*time.Millisecond).Nanoseconds() {
		t.Errorf("inline entry should be all exec: %+v", e)
	}
	if e.QueueNs != 0 || e.YieldStallNs != 0 {
		t.Errorf("inline entry carries engine phases: %+v", e)
	}
}

// TestServerSlowLogEndToEnd drives the server's serial execute path with
// a zero threshold and checks entries surface through Store.SlowLog —
// the same accessor /slowlog serves.
func TestServerSlowLogEndToEnd(t *testing.T) {
	st, _ := newAttribStore(t, time.Nanosecond, 16)
	srv := NewServer(st, func(string, ...any) {})
	rw := newRespWriter(bufio.NewWriterSize(io.Discard, 4096))
	if st.SlowLog() == nil {
		t.Fatal("SlowLog() = nil with attribution armed")
	}
	srv.execute(rw, "SET", [][]byte{[]byte("SET"), []byte("k"), []byte("v")})
	srv.execute(rw, "GET", [][]byte{[]byte("GET"), []byte("k")})
	entries := st.SlowLog()
	if len(entries) != 2 {
		t.Fatalf("slowlog entries = %d, want 2 at 1ns threshold", len(entries))
	}
	if entries[0].Cmd != "GET" || entries[1].Cmd != "SET" {
		t.Errorf("order not newest-first: %q then %q", entries[0].Cmd, entries[1].Cmd)
	}
	if entries[0].Key != "k" {
		t.Errorf("entry key = %q, want k", entries[0].Key)
	}
}

// TestBatchPhasesObserved: a batch routed through the shard-owner engine
// must feed the per-phase histograms — at minimum exec time, and queue
// time when the ring path ran.
func TestBatchPhasesObserved(t *testing.T) {
	st, reg := newAttribStore(t, 10*time.Millisecond, 16)
	if err := st.Set("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	b := st.NewBatch()
	b.Get("a")
	b.Set("b", []byte("2"))
	if err := b.Exec(); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `softmem_kv_phase_ns_count{phase="exec"}`) {
		t.Fatalf("exposition has no exec phase series:\n%s", out)
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, `softmem_kv_phase_ns_count{phase="exec"}`) {
			if strings.HasSuffix(line, " 0") {
				t.Errorf("exec phase observed 0 commands: %s", line)
			}
		}
	}
}

// TestObserveReplHop: the replica-side hook lands in phase="repl_hop",
// and is a safe no-op while attribution is disarmed.
func TestObserveReplHop(t *testing.T) {
	sma := core.New(core.Config{Machine: pages.NewPool(0)})
	st := NewFromConfig(Config{SMA: sma})
	t.Cleanup(st.Close)
	st.ObserveReplHop(time.Millisecond) // disarmed: must not panic

	reg := metrics.NewRegistry()
	st.RegisterMetrics(reg)
	st.ObserveReplHop(3 * time.Millisecond)
	st.ObserveReplHop(0) // non-positive durations are dropped
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `softmem_kv_phase_ns_count{phase="repl_hop"} 1`) {
		t.Fatalf("repl_hop count != 1:\n%s", buf.String())
	}
}

// TestProfilerLabelsPath exercises the pprof-labeled owner execution
// branch (-pprof in softkv); it must produce the same results as the
// unlabeled path.
func TestProfilerLabelsPath(t *testing.T) {
	profLabels.Store(true)
	defer profLabels.Store(false)
	st, _ := newStore(t, 0)
	if err := st.Set("k", bytes.Repeat([]byte("v"), 32)); err != nil {
		t.Fatal(err)
	}
	b := st.NewBatch()
	b.Get("k")
	b.Get("k")
	if err := b.Exec(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < b.Len(); i++ {
		if c := b.Cmd(i); c.Err != nil || !c.Ok {
			t.Fatalf("labeled GET %d = ok=%v err=%v", i, c.Ok, c.Err)
		}
	}
}

// phaseCount reads softmem_kv_phase_ns_count{phase=...} out of the
// registry's exposition.
func phaseCount(t *testing.T, reg *metrics.Registry, phase string) float64 {
	t.Helper()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	prefix := fmt.Sprintf("softmem_kv_phase_ns_count{phase=%q} ", phase)
	for _, line := range strings.Split(b.String(), "\n") {
		if strings.HasPrefix(line, prefix) {
			v, err := strconv.ParseFloat(strings.TrimPrefix(line, prefix), 64)
			if err != nil {
				t.Fatalf("bad count line %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("no %s phase series in exposition", phase)
	return 0
}

// TestContendedPhasesRecorded forces the contended execution paths a
// loaded multi-core server hits — ring hand-off, blocked lock
// acquisition, and reclaim-style lock yields — and checks each records
// into its phase histogram. A legacy Context locker stands in for a
// reclamation demand: both advertise through the same lockers counter
// the owner polls.
func TestContendedPhasesRecorded(t *testing.T) {
	sma := core.New(core.Config{Machine: pages.NewPool(0)})
	st := NewFromConfig(Config{SMA: sma, Shards: 1})
	t.Cleanup(st.Close)
	reg := metrics.NewRegistry()
	st.RegisterMetrics(reg)
	if err := st.Set("k1", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := st.Set("k2", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	ctx := st.shards[0].ht.Context()

	// Phase 1 — queue and lock_wait: hold the shard heap lock from a
	// legacy locker so Exec cannot run caller-runs (TryAcquire fails,
	// the batch rides the ring) and the owner blocks taking the lock.
	held := make(chan struct{})
	release := make(chan struct{})
	go ctx.Do(func(*core.Tx) error {
		close(held)
		<-release
		return nil
	})
	<-held
	b := st.NewBatch()
	b.Get("k1")
	b.Get("k2")
	done := make(chan error, 1)
	go func() { done <- b.Exec() }()
	time.Sleep(5 * time.Millisecond) // batch reaches the ring; owner blocks on the lock
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	for i := 0; i < b.Len(); i++ {
		if c := b.Cmd(i); c.Err != nil || !c.Ok {
			t.Fatalf("cmd %d: ok=%v err=%v", i, c.Ok, c.Err)
		}
	}
	b.Reset()
	if phaseCount(t, reg, "queue") == 0 {
		t.Error("ring hand-off recorded no queue phase")
	}
	if phaseCount(t, reg, "lock_wait") == 0 {
		t.Error("blocked acquisition recorded no lock_wait phase")
	}

	// Phase 2 — yield_stall: a looping legacy locker (sleeping while it
	// holds the lock, the way a reclaim callback with cleanup work does)
	// contends with batch execution; the owner's contended Yields must
	// land in yield_stall.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			ctx.Do(func(*core.Tx) error {
				time.Sleep(100 * time.Microsecond)
				return nil
			})
		}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for phaseCount(t, reg, "yield_stall") == 0 {
		if time.Now().After(deadline) {
			close(stop)
			wg.Wait()
			t.Fatal("no yield_stall recorded after 10s of contended batches")
		}
		for i := 0; i < 64; i++ {
			b.Get("k1")
			b.Get("k2")
		}
		if err := b.Exec(); err != nil {
			t.Fatal(err)
		}
		b.Reset()
	}
	close(stop)
	wg.Wait()
}

// TestSlowLogDisabledByDefault: without RegisterMetrics the slowlog
// accessor reports nil and the hot path carries no attribution state.
func TestSlowLogDisabledByDefault(t *testing.T) {
	st, _ := newStore(t, 0)
	if st.SlowLog() != nil {
		t.Fatal("SlowLog() != nil before RegisterMetrics")
	}
	if st.attrib.Load() != nil {
		t.Fatal("attribution armed without a registry")
	}
}
