package kvstore

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The store speaks a subset of RESP (the Redis serialization protocol):
// array-of-bulk-strings requests plus inline commands, and simple-string,
// error, integer, bulk, and nil replies. Enough for redis-cli-style
// interaction and for the experiments.

// ErrProtocol reports malformed RESP input.
var ErrProtocol = errors.New("kvstore: protocol error")

// maxBulk bounds a single argument; larger input indicates a broken or
// hostile client.
const maxBulk = 8 << 20

// readCommand parses one request: either a RESP array of bulk strings or
// an inline whitespace-separated line. io.EOF means orderly end of
// stream.
func readCommand(r *bufio.Reader) ([]string, error) {
	line, err := readLine(r)
	if err != nil {
		return nil, err
	}
	if len(line) == 0 {
		return nil, nil // empty line: ignore
	}
	if line[0] != '*' {
		return strings.Fields(line), nil // inline command
	}
	n, err := strconv.Atoi(line[1:])
	if err != nil || n < 0 || n > 1024 {
		return nil, fmt.Errorf("%w: bad array header %q", ErrProtocol, line)
	}
	args := make([]string, 0, n)
	for i := 0; i < n; i++ {
		hdr, err := readLine(r)
		if err != nil {
			return nil, err
		}
		if len(hdr) == 0 || hdr[0] != '$' {
			return nil, fmt.Errorf("%w: expected bulk header, got %q", ErrProtocol, hdr)
		}
		ln, err := strconv.Atoi(hdr[1:])
		if err != nil || ln < 0 || ln > maxBulk {
			return nil, fmt.Errorf("%w: bad bulk length %q", ErrProtocol, hdr)
		}
		buf := make([]byte, ln+2)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		if buf[ln] != '\r' || buf[ln+1] != '\n' {
			return nil, fmt.Errorf("%w: bulk not CRLF-terminated", ErrProtocol)
		}
		args = append(args, string(buf[:ln]))
	}
	return args, nil
}

// readLine reads a CRLF- (or bare LF-) terminated line without the
// terminator.
func readLine(r *bufio.Reader) (string, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return "", err
	}
	line = strings.TrimRight(line, "\r\n")
	return line, nil
}

// Reply writers.

func writeSimple(w *bufio.Writer, s string) error {
	_, err := fmt.Fprintf(w, "+%s\r\n", s)
	return err
}

func writeError(w *bufio.Writer, msg string) error {
	_, err := fmt.Fprintf(w, "-ERR %s\r\n", msg)
	return err
}

func writeInt(w *bufio.Writer, n int64) error {
	_, err := fmt.Fprintf(w, ":%d\r\n", n)
	return err
}

func writeBulk(w *bufio.Writer, b []byte) error {
	if _, err := fmt.Fprintf(w, "$%d\r\n", len(b)); err != nil {
		return err
	}
	if _, err := w.Write(b); err != nil {
		return err
	}
	_, err := w.WriteString("\r\n")
	return err
}

func writeNil(w *bufio.Writer) error {
	_, err := w.WriteString("$-1\r\n")
	return err
}

func writeArrayHeader(w *bufio.Writer, n int) error {
	_, err := fmt.Fprintf(w, "*%d\r\n", n)
	return err
}

// Reply reading (client side).

// readReply parses one server reply. A nil bulk returns (nil, false,
// nil).
func readReply(r *bufio.Reader) (value []byte, ok bool, err error) {
	line, err := readLine(r)
	if err != nil {
		return nil, false, err
	}
	if len(line) == 0 {
		return nil, false, fmt.Errorf("%w: empty reply", ErrProtocol)
	}
	switch line[0] {
	case '+':
		return []byte(line[1:]), true, nil
	case ':':
		return []byte(line[1:]), true, nil
	case '-':
		return nil, false, errors.New(strings.TrimPrefix(line[1:], "ERR "))
	case '$':
		n, convErr := strconv.Atoi(line[1:])
		if convErr != nil || n > maxBulk {
			return nil, false, fmt.Errorf("%w: bad bulk length %q", ErrProtocol, line)
		}
		if n < 0 {
			return nil, false, nil // nil reply
		}
		buf := make([]byte, n+2)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, false, err
		}
		return buf[:n], true, nil
	default:
		return nil, false, fmt.Errorf("%w: unknown reply type %q", ErrProtocol, line)
	}
}
