package kvstore

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// The store speaks a subset of RESP (the Redis serialization protocol):
// array-of-bulk-strings requests plus inline commands, and simple-string,
// error, integer, bulk, and nil replies. Enough for redis-cli-style
// interaction and for the experiments.
//
// The parse and reply paths are allocation-free in steady state: each
// connection owns a cmdReader (reusable argument buffers), a replyReader
// (reusable bulk scratch), and a respWriter (reusable numeric scratch),
// so a pipelined client costs no heap traffic per command beyond what
// the store itself does.

// ErrProtocol reports malformed RESP input.
var ErrProtocol = errors.New("kvstore: protocol error")

// ReplyError is an error reply sent by the server ("-ERR ..."), as
// opposed to a transport or protocol failure. Pipelines deliver it
// per-command and keep reading; everything else aborts the connection.
type ReplyError string

// Error implements error.
func (e ReplyError) Error() string { return string(e) }

// maxBulk bounds a single argument; larger input indicates a broken or
// hostile client.
const maxBulk = 8 << 20

// maxLine bounds a single protocol line (array/bulk headers and inline
// commands, terminator included). Bulk *bodies* are bounded by maxBulk;
// without this cap a hostile client streaming bytes that never contain
// a newline would grow the line buffer without bound.
const maxLine = 64 << 10

// maxArgs bounds a request's arity.
const maxArgs = 1024

// errLineTooLong is the capped readLine's failure, wrapped as a
// protocol error so callers drop the connection.
var errLineTooLong = fmt.Errorf("%w: line exceeds %d bytes", ErrProtocol, maxLine)

// lineReader reads CRLF- (or bare LF-) terminated lines of bounded
// length without allocating: the fast path returns a slice into the
// bufio buffer, and lines that straddle a buffer boundary accumulate in
// a reusable spill buffer.
type lineReader struct {
	r    *bufio.Reader
	line []byte // spill scratch, reused across reads
}

// readLine returns one line without its terminator. The returned slice
// aliases either the bufio buffer or the reader's scratch and is valid
// only until the next read.
func (lr *lineReader) readLine() ([]byte, error) {
	b, err := lr.r.ReadSlice('\n')
	if err == nil {
		if len(b) > maxLine {
			return nil, errLineTooLong
		}
		return trimCRLF(b), nil
	}
	if err != bufio.ErrBufferFull {
		return nil, err
	}
	lr.line = append(lr.line[:0], b...)
	for {
		if len(lr.line) > maxLine {
			// Oversized even if the stream ends here: report the bound,
			// not whatever error the next read would surface.
			return nil, errLineTooLong
		}
		b, err = lr.r.ReadSlice('\n')
		lr.line = append(lr.line, b...)
		if len(lr.line) > maxLine {
			return nil, errLineTooLong
		}
		if err == nil {
			return trimCRLF(lr.line), nil
		}
		if err != bufio.ErrBufferFull {
			return nil, err
		}
	}
}

// trimCRLF drops a trailing LF and an optional CR before it.
func trimCRLF(b []byte) []byte {
	if n := len(b); n > 0 && b[n-1] == '\n' {
		b = b[:n-1]
	}
	if n := len(b); n > 0 && b[n-1] == '\r' {
		b = b[:n-1]
	}
	return b
}

// asciiInt parses a decimal integer with an optional +/- sign without
// allocating. It rejects empty input, junk, and anything longer than 18
// digits (every in-protocol bound is far smaller).
func asciiInt(b []byte) (int, bool) {
	neg := false
	if len(b) > 0 && (b[0] == '-' || b[0] == '+') {
		neg = b[0] == '-'
		b = b[1:]
	}
	if len(b) == 0 || len(b) > 18 {
		return 0, false
	}
	n := 0
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	if neg {
		n = -n
	}
	return n, true
}

// cmdReader parses RESP requests into per-connection reusable argument
// buffers.
type cmdReader struct {
	lr   lineReader
	args [][]byte // reused per-arg buffers; grows to the peak arity seen
	crlf [2]byte
}

func newCmdReader(r *bufio.Reader) *cmdReader {
	return &cmdReader{lr: lineReader{r: r}}
}

// buffered reports how much input is already waiting in the reader —
// the server's "more pipelined commands pending" signal.
func (cr *cmdReader) buffered() int { return cr.lr.r.Buffered() }

// argBuf returns the i-th argument buffer resized to ln bytes, growing
// the arg table and the buffer's capacity as needed.
func (cr *cmdReader) argBuf(i, ln int) []byte {
	for len(cr.args) <= i {
		cr.args = append(cr.args, nil)
	}
	if cap(cr.args[i]) < ln {
		cr.args[i] = make([]byte, ln)
	}
	cr.args[i] = cr.args[i][:ln]
	return cr.args[i]
}

// ReadCommand parses one request: either a RESP array of bulk strings
// or an inline whitespace-separated line. io.EOF means orderly end of
// stream; a nil, error-free result is an empty line to ignore. The
// returned slices are owned by the reader and valid only until the next
// ReadCommand call; anything that must outlive command execution (keys
// inserted into the store) must be copied.
func (cr *cmdReader) ReadCommand() ([][]byte, error) {
	line, err := cr.lr.readLine()
	if err != nil {
		return nil, err
	}
	if len(line) == 0 {
		return nil, nil // empty line: ignore
	}
	if line[0] != '*' {
		return cr.splitInline(line)
	}
	n, ok := asciiInt(line[1:])
	if !ok || n < 0 || n > maxArgs {
		return nil, fmt.Errorf("%w: bad array header %q", ErrProtocol, line)
	}
	for i := 0; i < n; i++ {
		hdr, err := cr.lr.readLine()
		if err != nil {
			return nil, err
		}
		if len(hdr) == 0 || hdr[0] != '$' {
			return nil, fmt.Errorf("%w: expected bulk header, got %q", ErrProtocol, hdr)
		}
		ln, ok := asciiInt(hdr[1:])
		if !ok || ln < 0 || ln > maxBulk {
			return nil, fmt.Errorf("%w: bad bulk length %q", ErrProtocol, hdr)
		}
		buf := cr.argBuf(i, ln)
		if _, err := io.ReadFull(cr.lr.r, buf); err != nil {
			return nil, err
		}
		if _, err := io.ReadFull(cr.lr.r, cr.crlf[:]); err != nil {
			return nil, err
		}
		if cr.crlf[0] != '\r' || cr.crlf[1] != '\n' {
			return nil, fmt.Errorf("%w: bulk not CRLF-terminated", ErrProtocol)
		}
	}
	return cr.args[:n], nil
}

// splitInline copies each whitespace-separated field of an inline
// command into the reusable argument buffers (the line itself aliases
// the read buffer, which the bulk of ReadCommand may overwrite).
func (cr *cmdReader) splitInline(line []byte) ([][]byte, error) {
	n := 0
	for i := 0; i < len(line); {
		for i < len(line) && asciiSpace(line[i]) {
			i++
		}
		if i >= len(line) {
			break
		}
		start := i
		for i < len(line) && !asciiSpace(line[i]) {
			i++
		}
		if n >= maxArgs {
			return nil, fmt.Errorf("%w: too many inline arguments", ErrProtocol)
		}
		copy(cr.argBuf(n, i-start), line[start:i])
		n++
	}
	return cr.args[:n], nil
}

func asciiSpace(c byte) bool {
	switch c {
	case ' ', '\t', '\r', '\n', '\v', '\f':
		return true
	}
	return false
}

// respWriter writes replies through a bufio.Writer with a reusable
// numeric scratch, keeping the steady-state reply path allocation-free
// (the fmt-based writers it replaced boxed every integer).
type respWriter struct {
	w   *bufio.Writer
	num []byte
	// val is the server's per-connection value scratch: dispatch reads
	// stored values into it (Store.GetAppend) and writes them out
	// before the next command reuses it, so a GET hit allocates only
	// its key string.
	val []byte
}

func newRespWriter(w *bufio.Writer) *respWriter {
	return &respWriter{w: w, num: make([]byte, 0, 24)}
}

func (rw *respWriter) flush() error { return rw.w.Flush() }

func (rw *respWriter) simple(s string) error {
	rw.w.WriteByte('+')
	rw.w.WriteString(s)
	_, err := rw.w.WriteString("\r\n")
	return err
}

func (rw *respWriter) error(msg string) error {
	rw.w.WriteString("-ERR ")
	rw.w.WriteString(msg)
	_, err := rw.w.WriteString("\r\n")
	return err
}

// busy writes the -BUSY shed-load reply: the addressed shard owner's
// command ring was full, so the store refused the command rather than
// block the connection reader. Clients back off and retry.
func (rw *respWriter) busy() error {
	_, err := rw.w.WriteString("-BUSY kvstore overloaded; retry later\r\n")
	return err
}

func (rw *respWriter) integer(n int64) error {
	rw.w.WriteByte(':')
	rw.num = strconv.AppendInt(rw.num[:0], n, 10)
	rw.w.Write(rw.num)
	_, err := rw.w.WriteString("\r\n")
	return err
}

func (rw *respWriter) bulkHeader(n int) error {
	rw.w.WriteByte('$')
	rw.num = strconv.AppendInt(rw.num[:0], int64(n), 10)
	rw.w.Write(rw.num)
	_, err := rw.w.WriteString("\r\n")
	return err
}

func (rw *respWriter) bulk(b []byte) error {
	rw.bulkHeader(len(b))
	rw.w.Write(b)
	_, err := rw.w.WriteString("\r\n")
	return err
}

func (rw *respWriter) bulkString(s string) error {
	rw.bulkHeader(len(s))
	rw.w.WriteString(s)
	_, err := rw.w.WriteString("\r\n")
	return err
}

func (rw *respWriter) nilReply() error {
	_, err := rw.w.WriteString("$-1\r\n")
	return err
}

func (rw *respWriter) arrayHeader(n int) error {
	rw.w.WriteByte('*')
	rw.num = strconv.AppendInt(rw.num[:0], int64(n), 10)
	rw.w.Write(rw.num)
	_, err := rw.w.WriteString("\r\n")
	return err
}

// ReplyWriter implementation: the exported surface a ClusterHook
// writes through. WriteError is deliberately raw (no "-ERR " prefix)
// so redirects keep their own leading token ("MOVED ...").

func (rw *respWriter) WriteSimple(s string) { rw.simple(s) }

func (rw *respWriter) WriteError(msg string) {
	rw.w.WriteByte('-')
	rw.w.WriteString(msg)
	rw.w.WriteString("\r\n")
}

func (rw *respWriter) WriteInteger(n int64)     { rw.integer(n) }
func (rw *respWriter) WriteBulk(b []byte)       { rw.bulk(b) }
func (rw *respWriter) WriteBulkString(s string) { rw.bulkString(s) }
func (rw *respWriter) WriteNil()                { rw.nilReply() }
func (rw *respWriter) WriteArrayHeader(n int)   { rw.arrayHeader(n) }

var _ ReplyWriter = (*respWriter)(nil)

// Reply reading (client side).

// replyReader parses server replies into a reusable bulk scratch.
type replyReader struct {
	lr  lineReader
	buf []byte // bulk payload scratch, reused across replies
}

// read parses one reply. A nil bulk returns (nil, false, nil); an error
// reply returns a ReplyError. The returned value aliases the reader's
// scratch (or the read buffer, for line replies) and is valid only
// until the next read.
func (rr *replyReader) read() (value []byte, ok bool, err error) {
	line, err := rr.lr.readLine()
	if err != nil {
		return nil, false, err
	}
	if len(line) == 0 {
		return nil, false, fmt.Errorf("%w: empty reply", ErrProtocol)
	}
	switch line[0] {
	case '+', ':':
		return line[1:], true, nil
	case '-':
		msg := line[1:]
		if len(msg) >= 4 && string(msg[:4]) == "ERR " {
			msg = msg[4:]
		}
		return nil, false, ReplyError(msg)
	case '$':
		n, convOK := asciiInt(line[1:])
		if !convOK || n > maxBulk {
			return nil, false, fmt.Errorf("%w: bad bulk length %q", ErrProtocol, line)
		}
		if n < 0 {
			return nil, false, nil // nil reply
		}
		if cap(rr.buf) < n+2 {
			rr.buf = make([]byte, n+2)
		}
		buf := rr.buf[:n+2]
		if _, err := io.ReadFull(rr.lr.r, buf); err != nil {
			return nil, false, err
		}
		if buf[n] != '\r' || buf[n+1] != '\n' {
			return nil, false, fmt.Errorf("%w: bulk not CRLF-terminated", ErrProtocol)
		}
		return buf[:n], true, nil
	default:
		return nil, false, fmt.Errorf("%w: unknown reply type %q", ErrProtocol, line)
	}
}

// readReply parses one server reply, returning a caller-owned copy of
// the value. A nil bulk returns (nil, false, nil). Convenience wrapper
// over replyReader for one-shot readers; pipelined paths hold a
// replyReader and reuse its scratch instead.
func readReply(r *bufio.Reader) (value []byte, ok bool, err error) {
	rr := replyReader{lr: lineReader{r: r}}
	v, ok, err := rr.read()
	if v != nil {
		v = append([]byte(nil), v...)
	}
	return v, ok, err
}

// appendCommand encodes args as a RESP array of bulk strings onto dst.
func appendCommand(dst []byte, args ...string) []byte {
	dst = append(dst, '*')
	dst = strconv.AppendInt(dst, int64(len(args)), 10)
	dst = append(dst, '\r', '\n')
	for _, a := range args {
		dst = append(dst, '$')
		dst = strconv.AppendInt(dst, int64(len(a)), 10)
		dst = append(dst, '\r', '\n')
		dst = append(dst, a...)
		dst = append(dst, '\r', '\n')
	}
	return dst
}
