package kvstore

import (
	"encoding/binary"
	"sync"

	"softmem/internal/sds"
)

// listElem addresses one element of one Redis-style list by its
// monotonically assigned sequence number.
type listElem struct {
	key string
	seq int64
}

// listStore implements LPUSH/RPUSH-style lists as a composed SDS —
// exactly the shape of the paper's prototype, where Redis's "per-bucket
// soft linked lists ... store their list elements in soft memory" while
// structure metadata stays traditional. Elements live in a soft hash
// table keyed by (key, seq); the per-key seq deque is traditional memory
// cleaned up by the reclaim callback.
//
// Under pressure the table evicts in insertion order, so a list loses
// its OLDEST elements first; the seq index tolerates holes.
//
// Lock ordering matches hashStore: the Context lock (inside sds calls) before
// listStore.mu.
type listStore struct {
	ht *sds.SoftHashTable[listElem]

	mu    sync.Mutex
	seqs  map[string][]int64 // per key, ascending; holes appear on reclaim
	next  int64
	holes int64
}

func newListStore(table *sds.SoftHashTable[listElem]) *listStore {
	return &listStore{ht: table, seqs: make(map[string][]int64)}
}

// dropElem removes a reclaimed element from the traditional index
// (callback path; runs under the Context lock, then takes mu).
func (l *listStore) dropElem(e listElem) {
	l.mu.Lock()
	seqs := l.seqs[e.key]
	// Binary search: seqs are ascending.
	lo, hi := 0, len(seqs)
	for lo < hi {
		mid := (lo + hi) / 2
		if seqs[mid] < e.seq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(seqs) && seqs[lo] == e.seq {
		l.seqs[e.key] = append(seqs[:lo], seqs[lo+1:]...)
		if len(l.seqs[e.key]) == 0 {
			delete(l.seqs, e.key)
		}
		l.holes++
	}
	l.mu.Unlock()
}

// push appends (right) or prepends (left) a value.
func (l *listStore) push(key string, value []byte, left bool) (int, error) {
	l.mu.Lock()
	l.next++
	seq := l.next
	if left {
		// Left pushes get sequence numbers below the current minimum;
		// encode as negative of the counter to keep ordering stable.
		seq = -l.next
	}
	l.mu.Unlock()

	if err := l.ht.Put(listElem{key: key, seq: seq}, value); err != nil {
		return 0, err
	}
	l.mu.Lock()
	// Insert in sorted position: concurrent pushes may reach this point
	// out of sequence order, and the index must stay ascending for
	// dropElem's binary search.
	seqs := l.seqs[key]
	lo, hi := 0, len(seqs)
	for lo < hi {
		mid := (lo + hi) / 2
		if seqs[mid] < seq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	seqs = append(seqs, 0)
	copy(seqs[lo+1:], seqs[lo:])
	seqs[lo] = seq
	l.seqs[key] = seqs
	n := len(seqs)
	l.mu.Unlock()
	return n, nil
}

// pop removes and returns the leftmost or rightmost live element.
func (l *listStore) pop(key string, left bool) (value []byte, ok bool, err error) {
	for {
		l.mu.Lock()
		seqs := l.seqs[key]
		if len(seqs) == 0 {
			l.mu.Unlock()
			return nil, false, nil
		}
		var seq int64
		if left {
			seq = seqs[0]
			l.seqs[key] = seqs[1:]
		} else {
			seq = seqs[len(seqs)-1]
			l.seqs[key] = seqs[:len(seqs)-1]
		}
		if len(l.seqs[key]) == 0 {
			delete(l.seqs, key)
		}
		l.mu.Unlock()

		v, present, err := l.ht.Get(listElem{key: key, seq: seq})
		if err != nil {
			return nil, false, err
		}
		if !present {
			continue // reclaimed between index read and fetch: skip the hole
		}
		if _, err := l.ht.Delete(listElem{key: key, seq: seq}); err != nil {
			return nil, false, err
		}
		return v, true, nil
	}
}

// rangeList returns live elements in positions [start, stop] with Redis
// semantics (negative indices count from the end; stop is inclusive).
func (l *listStore) rangeList(key string, start, stop int) ([][]byte, error) {
	l.mu.Lock()
	seqs := append([]int64(nil), l.seqs[key]...)
	l.mu.Unlock()
	n := len(seqs)
	if n == 0 {
		return nil, nil
	}
	if start < 0 {
		start += n
	}
	if stop < 0 {
		stop += n
	}
	if start < 0 {
		start = 0
	}
	if stop >= n {
		stop = n - 1
	}
	if start > stop {
		return nil, nil
	}
	out := make([][]byte, 0, stop-start+1)
	for _, seq := range seqs[start : stop+1] {
		v, ok, err := l.ht.Get(listElem{key: key, seq: seq})
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, v)
		}
	}
	return out, nil
}

// seqKeyBytes approximates a list element's traditional index cost.
func seqKeyBytes(e listElem) int { return len(e.key) + binary.Size(e.seq) + keyOverheadBytes }

// LPush prepends values to key's list, returning its new length.
func (s *Store) LPush(key string, values ...[]byte) (int, error) {
	n := 0
	for _, v := range values {
		var err error
		n, err = s.lists.push(key, v, true)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// RPush appends values to key's list, returning its new length.
func (s *Store) RPush(key string, values ...[]byte) (int, error) {
	n := 0
	for _, v := range values {
		var err error
		n, err = s.lists.push(key, v, false)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// LPop removes and returns the head of key's list.
func (s *Store) LPop(key string) ([]byte, bool, error) { return s.lists.pop(key, true) }

// RPop removes and returns the tail of key's list.
func (s *Store) RPop(key string) ([]byte, bool, error) { return s.lists.pop(key, false) }

// LLen returns the number of indexed elements in key's list.
func (s *Store) LLen(key string) int {
	s.lists.mu.Lock()
	defer s.lists.mu.Unlock()
	return len(s.lists.seqs[key])
}

// LRange returns the live elements at positions [start, stop], Redis
// semantics. Elements reclaimed under pressure are absent — the oldest
// go first, like the paper's soft linked list.
func (s *Store) LRange(key string, start, stop int) ([][]byte, error) {
	return s.lists.rangeList(key, start, stop)
}
