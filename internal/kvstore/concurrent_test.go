package kvstore

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"softmem/internal/core"
	"softmem/internal/pages"
	"softmem/internal/sds"
)

// TestStoreConcurrentSharded hammers a sharded store from many client
// goroutines while a background "daemon" issues reclamation demands and
// a sweeper collects TTLs — the server's real concurrency shape. Run
// with -race.
func TestStoreConcurrentSharded(t *testing.T) {
	machine := pages.NewPool(0)
	sma := core.New(core.Config{Machine: machine})
	st := NewFromConfig(Config{SMA: sma, Shards: 8, Policy: sds.EvictLRU})

	stop := make(chan struct{})
	var bg sync.WaitGroup
	bg.Add(2)
	go func() {
		defer bg.Done()
		rng := rand.New(rand.NewSource(7))
		for {
			select {
			case <-stop:
				return
			default:
			}
			sma.HandleDemand(1 + rng.Intn(6))
			time.Sleep(300 * time.Microsecond)
		}
	}()
	go func() {
		defer bg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			st.SweepExpired()
			_ = st.Stats()
			time.Sleep(time.Millisecond)
		}
	}()

	const (
		workers = 8
		ops     = 1200
		keys    = 512
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			val := make([]byte, 512)
			for i := 0; i < ops; i++ {
				key := fmt.Sprintf("k-%d", rng.Intn(keys))
				switch rng.Intn(10) {
				case 0, 1, 2:
					if err := st.Set(key, val[:64+rng.Intn(448)]); err != nil {
						t.Errorf("set: %v", err)
						return
					}
				case 3, 4, 5, 6:
					if _, _, err := st.Get(key); err != nil {
						t.Errorf("get: %v", err)
						return
					}
				case 7:
					if _, err := st.Del(key); err != nil {
						t.Errorf("del: %v", err)
						return
					}
				case 8:
					if _, err := st.Incr("ctr-"+key, 1); err != nil {
						// A concurrent Set may have stored non-integer
						// bytes under a ctr key only if keyspaces
						// collide; they don't, so any error is real.
						t.Errorf("incr: %v", err)
						return
					}
				case 9:
					st.Expire(key, time.Duration(rng.Intn(5))*time.Millisecond)
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	bg.Wait()

	if err := sma.VerifyIntegrity(); err != nil {
		t.Fatalf("integrity after churn: %v", err)
	}
	stats := st.Stats()
	if stats.Shards != 8 {
		t.Fatalf("Shards = %d, want 8", stats.Shards)
	}
	if stats.Entries != st.Len() {
		t.Fatalf("Entries = %d, Len = %d", stats.Entries, st.Len())
	}
	st.Close()
	sma.Close()
	if machine.InUse() != 0 {
		t.Fatalf("pages leaked after close: %d", machine.InUse())
	}
}

// TestStoreShardRouting pins down the router: one shard behaves exactly
// like the unsharded store, and a sharded store still finds every key it
// stored, across all whole-store operations.
func TestStoreShardRouting(t *testing.T) {
	for _, shards := range []int{1, 3, 8} {
		sma := core.New(core.Config{Machine: pages.NewPool(0)})
		st := NewFromConfig(Config{SMA: sma, Shards: shards})
		want := shards
		if want <= 1 {
			want = 1
		} else if want&(want-1) != 0 {
			want = 4 // 3 rounds up to the next power of two
		}
		if got := st.Stats().Shards; got != want {
			t.Fatalf("Shards(%d) = %d, want %d", shards, got, want)
		}
		const n = 200
		for i := 0; i < n; i++ {
			if err := st.Set(fmt.Sprintf("key-%d", i), []byte(fmt.Sprintf("val-%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		if st.Len() != n {
			t.Fatalf("Len = %d, want %d", st.Len(), n)
		}
		for i := 0; i < n; i++ {
			v, ok, err := st.Get(fmt.Sprintf("key-%d", i))
			if err != nil || !ok || string(v) != fmt.Sprintf("val-%d", i) {
				t.Fatalf("get key-%d: %q %v %v", i, v, ok, err)
			}
		}
		ks, err := st.Keys("key-1?")
		if err != nil {
			t.Fatal(err)
		}
		if len(ks) != 10 {
			t.Fatalf("Keys matched %d, want 10", len(ks))
		}
		if err := st.FlushAll(); err != nil {
			t.Fatal(err)
		}
		if st.Len() != 0 {
			t.Fatalf("Len after flush = %d", st.Len())
		}
		st.Close()
		sma.Close()
	}
}
