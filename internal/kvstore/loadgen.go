package kvstore

import (
	"fmt"
	"io"
	"sync"
	"time"

	"softmem/internal/metrics"
	"softmem/internal/trace"
)

// LoadGenConfig parameterizes a YCSB-style workload against a kvstore
// server.
type LoadGenConfig struct {
	// Addr is the server's RESP address.
	Addr string
	// Conns is the number of concurrent client connections. Default 4.
	Conns int
	// Requests is the total operation count. Default 10000.
	Requests int
	// ReadFraction is the GET share; the rest are SETs. Default 0.9.
	ReadFraction float64
	// Keys is the keyspace size; keys are Zipf-distributed. Default
	// 10000.
	Keys uint64
	// Skew is the Zipf parameter (>1). Default 1.2.
	Skew float64
	// ValueBytes is the SET payload size. Default 256.
	ValueBytes int
	// RefillOnMiss re-SETs a key after a GET miss, modelling a cache in
	// front of a database. Default true (set NoRefill to disable).
	NoRefill bool
	// Seed drives the key streams.
	Seed int64
}

func (c *LoadGenConfig) setDefaults() {
	if c.Conns <= 0 {
		c.Conns = 4
	}
	if c.Requests <= 0 {
		c.Requests = 10000
	}
	if c.ReadFraction <= 0 {
		c.ReadFraction = 0.9
	}
	if c.Keys == 0 {
		c.Keys = 10000
	}
	if c.Skew <= 1 {
		c.Skew = 1.2
	}
	if c.ValueBytes <= 0 {
		c.ValueBytes = 256
	}
}

// LoadGenResult summarizes a workload run.
type LoadGenResult struct {
	Requests   int
	Elapsed    time.Duration
	Throughput float64 // ops/sec
	Gets       int64
	Sets       int64
	Hits       int64
	Misses     int64
	// GetLatency and SetLatency are in nanoseconds.
	GetLatency *metrics.Histogram
	SetLatency *metrics.Histogram
}

// HitRate returns the GET hit fraction.
func (r LoadGenResult) HitRate() float64 {
	if r.Gets == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Gets)
}

// Fprint renders the result.
func (r LoadGenResult) Fprint(w io.Writer) {
	fmt.Fprintf(w, "requests=%d elapsed=%v throughput=%.0f ops/s hitrate=%.1f%%\n",
		r.Requests, r.Elapsed.Round(time.Millisecond), r.Throughput, 100*r.HitRate())
	fmt.Fprintf(w, "  GET p50=%s p95=%s p99=%s max=%s\n",
		nsDur(r.GetLatency.Quantile(0.5)), nsDur(r.GetLatency.Quantile(0.95)),
		nsDur(r.GetLatency.Quantile(0.99)), nsDur(r.GetLatency.Max()))
	fmt.Fprintf(w, "  SET p50=%s p95=%s p99=%s max=%s\n",
		nsDur(r.SetLatency.Quantile(0.5)), nsDur(r.SetLatency.Quantile(0.95)),
		nsDur(r.SetLatency.Quantile(0.99)), nsDur(r.SetLatency.Max()))
}

func nsDur(ns float64) time.Duration { return time.Duration(ns).Round(time.Microsecond) }

// RunLoad drives the configured workload and reports latency and hit
// statistics. It is the measurement harness behind cmd/kvbench.
func RunLoad(cfg LoadGenConfig) (LoadGenResult, error) {
	cfg.setDefaults()
	res := LoadGenResult{
		Requests:   cfg.Requests,
		GetLatency: metrics.NewHistogram(1.1),
		SetLatency: metrics.NewHistogram(1.1),
	}
	var gets, sets, hits, misses int64
	var mu sync.Mutex

	perConn := cfg.Requests / cfg.Conns
	var wg sync.WaitGroup
	errs := make(chan error, cfg.Conns)
	start := time.Now()
	for c := 0; c < cfg.Conns; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cli, err := DialClient("tcp", cfg.Addr)
			if err != nil {
				errs <- err
				return
			}
			defer cli.Close()
			keys := trace.NewZipfKeys(cfg.Seed+int64(id), cfg.Keys, cfg.Skew)
			opPick := trace.NewUniformKeys(cfg.Seed+1000+int64(id), 1000)
			value := string(make([]byte, cfg.ValueBytes))
			var g, s, h, m int64
			for i := 0; i < perConn; i++ {
				key := trace.Key(keys.Next())
				if float64(opPick.Next()) < cfg.ReadFraction*1000 {
					g++
					t0 := time.Now()
					_, ok, err := cli.Get(key)
					res.GetLatency.ObserveDuration(time.Since(t0))
					if err != nil {
						errs <- err
						return
					}
					if ok {
						h++
						continue
					}
					m++
					if !cfg.NoRefill {
						s++
						t0 = time.Now()
						if err := cli.Set(key, value); err != nil {
							errs <- err
							return
						}
						res.SetLatency.ObserveDuration(time.Since(t0))
					}
				} else {
					s++
					t0 := time.Now()
					if err := cli.Set(key, value); err != nil {
						errs <- err
						return
					}
					res.SetLatency.ObserveDuration(time.Since(t0))
				}
			}
			mu.Lock()
			gets += g
			sets += s
			hits += h
			misses += m
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return res, err
	}
	res.Elapsed = time.Since(start)
	res.Gets, res.Sets, res.Hits, res.Misses = gets, sets, hits, misses
	if res.Elapsed > 0 {
		res.Throughput = float64(gets+sets) / res.Elapsed.Seconds()
	}
	return res, nil
}
