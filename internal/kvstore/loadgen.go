package kvstore

import (
	"fmt"
	"io"
	"sync"
	"time"

	"softmem/internal/metrics"
	"softmem/internal/trace"
)

// LoadGenConfig parameterizes a YCSB-style workload against a kvstore
// server. Numeric fields treat a negative value as "use the default";
// zero is an honored, explicit setting where it is meaningful
// (ReadFraction: 0 is a write-only workload, Skew: 0 asks for the
// default because the Zipf parameter must be > 1).
type LoadGenConfig struct {
	// Addr is the server's RESP address.
	Addr string
	// Conns is the number of concurrent client connections. Default 4.
	Conns int
	// Requests is the total operation count. Default 10000.
	Requests int
	// ReadFraction is the GET share in [0, 1]; the rest are SETs.
	// Negative means the default, 0.9. An explicit 0 is honored as a
	// write-only workload.
	ReadFraction float64
	// Keys is the keyspace size; keys are Zipf-distributed. Default
	// 10000.
	Keys uint64
	// Skew is the Zipf parameter and must be > 1; values in (0, 1] are
	// rejected rather than silently rewritten. Zero or negative means
	// the default, 1.2.
	Skew float64
	// ValueBytes is the SET payload size. Default 256.
	ValueBytes int
	// Pipeline is the number of commands batched per round-trip on each
	// connection. Values <= 1 mean no pipelining (one request, one
	// reply).
	Pipeline int
	// RefillOnMiss re-SETs a key after a GET miss, modelling a cache in
	// front of a database. Default true (set NoRefill to disable).
	NoRefill bool
	// HotKeys and HotFraction model a hot-key storm on top of the Zipf
	// base workload: with probability HotFraction each operation targets
	// a uniformly chosen key in [0, HotKeys) instead of its Zipf sample.
	// HotKeys 0 (the default) disables the storm. A small HotKeys with a
	// large HotFraction concentrates traffic on a handful of keys — the
	// antagonist pattern the QoS experiments use to hammer one tenant
	// while another serves its normal distribution.
	HotKeys     uint64
	HotFraction float64
	// Seed drives the key streams.
	Seed int64
}

// DefaultReadFraction and DefaultSkew are what negative (and, for Skew,
// zero) config values resolve to.
const (
	DefaultReadFraction = 0.9
	DefaultSkew         = 1.2
)

func (c *LoadGenConfig) setDefaults() {
	if c.Conns <= 0 {
		c.Conns = 4
	}
	if c.Requests <= 0 {
		c.Requests = 10000
	}
	if c.ReadFraction < 0 {
		c.ReadFraction = DefaultReadFraction
	}
	if c.Keys == 0 {
		c.Keys = 10000
	}
	if c.Skew <= 0 {
		c.Skew = DefaultSkew
	}
	if c.ValueBytes <= 0 {
		c.ValueBytes = 256
	}
	if c.Pipeline < 1 {
		c.Pipeline = 1
	}
}

// validate rejects settings the generator cannot honor. It runs after
// setDefaults, so only explicit out-of-range values reach it.
func (c *LoadGenConfig) validate() error {
	if c.ReadFraction > 1 {
		return fmt.Errorf("kvstore: ReadFraction %v out of range [0, 1]", c.ReadFraction)
	}
	if c.Skew <= 1 {
		return fmt.Errorf("kvstore: Zipf skew %v must be > 1", c.Skew)
	}
	if c.HotFraction < 0 || c.HotFraction > 1 {
		return fmt.Errorf("kvstore: HotFraction %v out of range [0, 1]", c.HotFraction)
	}
	if c.HotFraction > 0 && c.HotKeys == 0 {
		return fmt.Errorf("kvstore: HotFraction %v needs HotKeys > 0", c.HotFraction)
	}
	return nil
}

// LoadGenResult summarizes a workload run.
type LoadGenResult struct {
	Requests   int
	Elapsed    time.Duration
	Throughput float64 // ops/sec
	Gets       int64
	Sets       int64
	Hits       int64
	Misses     int64
	// Overloaded counts commands the server shed with -BUSY (full shard
	// owner ring). Shed commands did not execute; the generator counts
	// them and moves on rather than aborting the run.
	Overloaded int64
	// GetLatency and SetLatency are in nanoseconds. Under pipelining
	// each operation observes its batch's round-trip time.
	GetLatency *metrics.Histogram
	SetLatency *metrics.Histogram
}

// HitRate returns the GET hit fraction.
func (r LoadGenResult) HitRate() float64 {
	if r.Gets == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Gets)
}

// Fprint renders the result.
func (r LoadGenResult) Fprint(w io.Writer) {
	fmt.Fprintf(w, "requests=%d elapsed=%v throughput=%.0f ops/s hitrate=%.1f%%\n",
		r.Requests, r.Elapsed.Round(time.Millisecond), r.Throughput, 100*r.HitRate())
	if r.Overloaded > 0 {
		fmt.Fprintf(w, "  overloaded (BUSY, shed): %d\n", r.Overloaded)
	}
	fmt.Fprintf(w, "  GET p50=%s p95=%s p99=%s max=%s\n",
		nsDur(r.GetLatency.Quantile(0.5)), nsDur(r.GetLatency.Quantile(0.95)),
		nsDur(r.GetLatency.Quantile(0.99)), nsDur(r.GetLatency.Max()))
	fmt.Fprintf(w, "  SET p50=%s p95=%s p99=%s max=%s\n",
		nsDur(r.SetLatency.Quantile(0.5)), nsDur(r.SetLatency.Quantile(0.95)),
		nsDur(r.SetLatency.Quantile(0.99)), nsDur(r.SetLatency.Max()))
}

func nsDur(ns float64) time.Duration { return time.Duration(ns).Round(time.Microsecond) }

// connTallies carries one connection's op counts back to the
// aggregator.
type connTallies struct {
	gets, sets, hits, misses, overloaded int64
}

// genOp is one pregenerated operation.
type genOp struct {
	key   string
	isGet bool
}

// maxKeyTable bounds the precomputed key-name table; larger keyspaces
// fall back to formatting keys during generation.
const maxKeyTable = 1 << 20

// keyNames precomputes the formatted key strings for small keyspaces so
// every occurrence of a key shares one string instead of reformatting
// it per operation.
func keyNames(keys uint64) []string {
	if keys == 0 || keys > maxKeyTable {
		return nil
	}
	names := make([]string, keys)
	for i := range names {
		names[i] = trace.Key(uint64(i))
	}
	return names
}

// genOps synthesizes one connection's operation sequence. Workload
// synthesis (Zipf sampling and key formatting) runs before RunLoad
// starts its clock, so the measurement covers client/server protocol
// work rather than generator arithmetic — on small machines the Zipf
// exp/log and fmt calls otherwise dominate the timed region.
func genOps(cfg LoadGenConfig, id, n int, names []string) []genOp {
	keys := trace.NewZipfKeys(cfg.Seed+int64(id), cfg.Keys, cfg.Skew)
	opPick := trace.NewUniformKeys(cfg.Seed+1000+int64(id), 1000)
	var hotPick, hotKeys *trace.UniformKeys
	if cfg.HotKeys > 0 && cfg.HotFraction > 0 {
		hotPick = trace.NewUniformKeys(cfg.Seed+2000+int64(id), 1000)
		hotKeys = trace.NewUniformKeys(cfg.Seed+3000+int64(id), cfg.HotKeys)
	}
	ops := make([]genOp, n)
	for i := range ops {
		k := keys.Next()
		if hotPick != nil && float64(hotPick.Next()) < cfg.HotFraction*1000 {
			k = hotKeys.Next()
		}
		var name string
		if names != nil && k < uint64(len(names)) {
			name = names[k]
		} else {
			name = trace.Key(k)
		}
		ops[i] = genOp{key: name, isGet: float64(opPick.Next()) < cfg.ReadFraction*1000}
	}
	return ops
}

// RunLoad drives the configured workload and reports latency and hit
// statistics. It is the measurement harness behind cmd/kvbench.
func RunLoad(cfg LoadGenConfig) (LoadGenResult, error) {
	cfg.setDefaults()
	res := LoadGenResult{
		Requests:   cfg.Requests,
		GetLatency: metrics.NewHistogram(1.1),
		SetLatency: metrics.NewHistogram(1.1),
	}
	if err := cfg.validate(); err != nil {
		return res, err
	}
	var total connTallies
	var mu sync.Mutex

	perConn := cfg.Requests / cfg.Conns
	names := keyNames(cfg.Keys)
	streams := make([][]genOp, cfg.Conns)
	for c := range streams {
		streams[c] = genOps(cfg, c, perConn, names)
	}
	var wg sync.WaitGroup
	errs := make(chan error, cfg.Conns)
	start := time.Now()
	for c := 0; c < cfg.Conns; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cli, err := DialClient("tcp", cfg.Addr)
			if err != nil {
				errs <- err
				return
			}
			defer cli.Close()
			var t connTallies
			if cfg.Pipeline > 1 {
				err = runConnPipelined(cli, cfg, streams[id], &res, &t)
			} else {
				err = runConnSerial(cli, cfg, streams[id], &res, &t)
			}
			if err != nil {
				errs <- err
				return
			}
			mu.Lock()
			total.gets += t.gets
			total.sets += t.sets
			total.hits += t.hits
			total.misses += t.misses
			total.overloaded += t.overloaded
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return res, err
	}
	res.Elapsed = time.Since(start)
	res.Gets, res.Sets, res.Hits, res.Misses = total.gets, total.sets, total.hits, total.misses
	res.Overloaded = total.overloaded
	if res.Elapsed > 0 {
		res.Throughput = float64(total.gets+total.sets) / res.Elapsed.Seconds()
	}
	return res, nil
}

// runConnSerial is the one-request-one-reply path, preserving true
// per-op latency.
func runConnSerial(cli *Client, cfg LoadGenConfig, ops []genOp, res *LoadGenResult, t *connTallies) error {
	value := string(make([]byte, cfg.ValueBytes))
	for _, o := range ops {
		if o.isGet {
			t.gets++
			t0 := time.Now()
			_, ok, err := cli.Get(o.key)
			res.GetLatency.ObserveDuration(time.Since(t0))
			if err != nil {
				if !IsOverloaded(err) {
					return err
				}
				t.overloaded++
				continue
			}
			if ok {
				t.hits++
				continue
			}
			t.misses++
			if !cfg.NoRefill {
				t.sets++
				t0 = time.Now()
				if err := cli.Set(o.key, value); err != nil {
					if !IsOverloaded(err) {
						return err
					}
					t.overloaded++
					continue
				}
				res.SetLatency.ObserveDuration(time.Since(t0))
			}
		} else {
			t.sets++
			t0 := time.Now()
			if err := cli.Set(o.key, value); err != nil {
				if !IsOverloaded(err) {
					return err
				}
				t.overloaded++
				continue
			}
			res.SetLatency.ObserveDuration(time.Since(t0))
		}
	}
	return nil
}

// runConnPipelined batches cfg.Pipeline commands per round-trip.
// GET-miss refills are queued into the next batch (they are extra
// operations on top of perConn, as in the serial path). Each op records
// the whole batch's round-trip time, which is the latency a pipelining
// client actually experiences.
func runConnPipelined(cli *Client, cfg LoadGenConfig, ops []genOp, res *LoadGenResult, t *connTallies) error {
	value := string(make([]byte, cfg.ValueBytes))
	pl := cli.Pipeline()

	batch := make([]genOp, 0, cfg.Pipeline)
	var refills []string
	next := 0
	for next < len(ops) || len(refills) > 0 {
		batch = batch[:0]
		for _, k := range refills {
			batch = append(batch, genOp{isGet: false, key: k})
			pl.Command("SET", k, value)
		}
		refills = refills[:0]
		for len(batch) < cfg.Pipeline && next < len(ops) {
			o := ops[next]
			next++
			batch = append(batch, o)
			if o.isGet {
				pl.Command("GET", o.key)
			} else {
				pl.Command("SET", o.key, value)
			}
		}
		var opErr error
		t0 := time.Now()
		err := pl.Exec(func(i int, _ []byte, ok bool, err error) {
			if err != nil {
				// A -BUSY shed is load-shedding working as designed:
				// count it and move on. Anything else fails the run.
				if IsOverloaded(err) {
					t.overloaded++
					return
				}
				if opErr == nil {
					opErr = err
				}
				return
			}
			if batch[i].isGet {
				t.gets++
				if ok {
					t.hits++
				} else {
					t.misses++
					if !cfg.NoRefill {
						refills = append(refills, batch[i].key)
					}
				}
			} else {
				t.sets++
			}
		})
		rtt := time.Since(t0)
		if err != nil {
			return err
		}
		if opErr != nil {
			return opErr
		}
		var batchGets, batchSets int64
		for _, o := range batch {
			if o.isGet {
				batchGets++
			} else {
				batchSets++
			}
		}
		res.GetLatency.ObserveDurationN(rtt, batchGets)
		res.SetLatency.ObserveDurationN(rtt, batchSets)
	}
	return nil
}
