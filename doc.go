// Package softmem reproduces "Towards Increased Datacenter Efficiency
// with Soft Memory" (Frisella, Loayza Sanchez, Schwarzkopf — HotOS '23)
// as a Go library.
//
// Soft memory is an opt-in, software-level abstraction over primary
// storage that makes allocations revocable under memory pressure, so a
// machine can move memory between processes instead of killing
// low-priority jobs. The implementation lives under internal/:
//
//   - internal/core — the Soft Memory Allocator (SMA), the paper's
//     primary contribution
//   - internal/sds — Soft Data Structures (list, array, hash table,
//     queue)
//   - internal/smd — the machine-wide Soft Memory Daemon
//   - internal/ipc — the daemon's socket protocol
//   - internal/kvstore — the Redis-like integration from §5
//   - internal/clustersim, internal/mlcache — the §2 motivating workloads
//   - internal/experiments — regenerates every table and figure (E1–E9)
//
// See README.md for a tour, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for paper-vs-measured results.
// The benchmarks in bench_test.go regenerate the evaluation:
//
//	go test -bench=. -benchmem
package softmem
